// Quotient machines: the DFSM corresponding to a closed partition.
//
// "A closed partition P corresponds to a distinct machine. Each state s of
// such a machine corresponds to a set of states in machine A" (paper §2.1).
// The quotient subscribes to the same events as the source machine; its
// state b on event e moves to the block containing delta(s, e) for any
// (equivalently every) s in block b.
#pragma once

#include <string>

#include "fsm/dfsm.hpp"
#include "partition/partition.hpp"

namespace ffsm {

/// Builds the quotient of `machine` by closed partition `p`.
/// State i of the result is block i of `p` (first-occurrence numbering); its
/// initial state is the block containing machine.initial().
/// Throws ContractViolation if `p` is not closed.
[[nodiscard]] Dfsm quotient_machine(const Dfsm& machine, const Partition& p,
                                    std::string name);

/// Descriptive state names for a quotient: block i is rendered as the set of
/// source-state names it contains, e.g. "{t0,t3}".
[[nodiscard]] std::string block_label(const Dfsm& machine, const Partition& p,
                                      std::uint32_t block);

}  // namespace ffsm
