#include "partition/quotient.hpp"

#include "partition/closure.hpp"
#include "util/contracts.hpp"

namespace ffsm {

Dfsm quotient_machine(const Dfsm& machine, const Partition& p,
                      std::string name) {
  FFSM_EXPECTS(p.size() == machine.size());
  if (!is_closed(machine, p))
    throw ContractViolation("quotient_machine(" + name +
                            "): partition is not closed");

  // Representative source state per block.
  std::vector<State> rep(p.block_count(), kInvalidState);
  for (State s = 0; s < machine.size(); ++s)
    if (rep[p.block_of(s)] == kInvalidState) rep[p.block_of(s)] = s;

  DfsmBuilder builder(std::move(name),
                      std::const_pointer_cast<Alphabet>(machine.alphabet()));
  builder.states(p.block_count(), "m");
  for (const EventId e : machine.events())
    builder.event(machine.alphabet()->name(e));
  for (std::uint32_t b = 0; b < p.block_count(); ++b)
    for (std::uint32_t pos = 0;
         pos < static_cast<std::uint32_t>(machine.events().size()); ++pos)
      builder.transition(b, machine.events()[pos],
                         p.block_of(machine.step_local(rep[b], pos)));
  builder.set_initial(p.block_of(machine.initial()));
  return builder.build();
}

std::string block_label(const Dfsm& machine, const Partition& p,
                        std::uint32_t block) {
  FFSM_EXPECTS(p.size() == machine.size());
  FFSM_EXPECTS(block < p.block_count());
  std::string out = "{";
  bool first = true;
  for (State s = 0; s < machine.size(); ++s) {
    if (p.block_of(s) != block) continue;
    if (!first) out += ',';
    out += machine.state_name(s);
    first = false;
  }
  out += '}';
  return out;
}

}  // namespace ffsm
