#include "replication/replication.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/contracts.hpp"

namespace ffsm {

namespace {

/// a*b with saturation at UINT64_MAX.
std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > UINT64_MAX / b) return UINT64_MAX;
  return a * b;
}

}  // namespace

ReplicationPlan make_replication_plan(std::span<const Dfsm> machines,
                                      std::uint32_t f, FaultModel model) {
  FFSM_EXPECTS(!machines.empty());
  ReplicationPlan plan;
  plan.copies_per_machine = replication_copies(model, f);
  plan.backups.reserve(machines.size() * plan.copies_per_machine);
  for (std::size_t i = 0; i < machines.size(); ++i) {
    for (std::uint32_t c = 0; c < plan.copies_per_machine; ++c) {
      plan.backups.push_back(machines[i]);  // identical copy
      plan.source.push_back(i);
    }
  }
  return plan;
}

std::uint64_t replication_state_space(std::span<const Dfsm> machines,
                                      std::uint32_t f, FaultModel model) {
  std::uint64_t product = 1;
  for (const Dfsm& m : machines) product = saturating_mul(product, m.size());
  std::uint64_t total = 1;
  for (std::uint32_t c = 0; c < replication_copies(model, f); ++c)
    total = saturating_mul(total, product);
  return total;
}

std::uint64_t fusion_state_space(std::span<const Dfsm> backups) {
  std::uint64_t product = 1;
  for (const Dfsm& m : backups) product = saturating_mul(product, m.size());
  return product;
}

std::optional<State> replica_recover_crash(
    std::span<const std::optional<State>> replica_states) {
  for (const auto& s : replica_states)
    if (s) return s;
  return std::nullopt;
}

std::optional<State> replica_recover_byzantine(
    std::span<const State> reported_states) {
  FFSM_EXPECTS(!reported_states.empty());
  std::unordered_map<State, std::size_t> votes;
  for (const State s : reported_states) ++votes[s];
  const auto best = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  if (best->second * 2 <= reported_states.size()) return std::nullopt;
  return best->first;
}

}  // namespace ffsm
