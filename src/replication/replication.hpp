// Replication baseline (paper sections 1 and 6).
//
// Classical state-machine replication tolerates f crash faults with f copies
// of each machine (n*f backups) and f Byzantine faults with 2f copies
// (2*n*f backups, majority voting). This module implements that baseline —
// both the plan (which backups exist) and the per-machine recovery rules —
// and the state-space accounting the paper's results table compares:
//   |Replication| = (prod_i |Mi|)^f          (crash;     ^(2f) Byzantine)
//   |Fusion|      =  prod_j |Fj|
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fsm/dfsm.hpp"

namespace ffsm {

enum class FaultModel { kCrash, kByzantine };

/// Copies of each original required by replication under the model.
[[nodiscard]] constexpr std::uint32_t replication_copies(FaultModel model,
                                                         std::uint32_t f) {
  return model == FaultModel::kCrash ? f : 2 * f;
}

struct ReplicationPlan {
  /// All backup machines: copies_per_machine replicas of each original, in
  /// original order ("<name>#copy" names).
  std::vector<Dfsm> backups;
  /// backups[k] replicates machines[source[k]].
  std::vector<std::size_t> source;
  std::uint32_t copies_per_machine = 0;
};

/// Builds the replication backup set for the given fault model.
[[nodiscard]] ReplicationPlan make_replication_plan(
    std::span<const Dfsm> machines, std::uint32_t f, FaultModel model);

/// Paper's accounting of backup state space for replication:
/// (prod |Mi|)^copies. Saturates at UINT64_MAX.
[[nodiscard]] std::uint64_t replication_state_space(
    std::span<const Dfsm> machines, std::uint32_t f, FaultModel model);

/// Paper's accounting for a fusion backup set: prod |Fj| (1 when empty).
/// Saturates at UINT64_MAX.
[[nodiscard]] std::uint64_t fusion_state_space(std::span<const Dfsm> backups);

/// Crash recovery for one replicated machine: any live replica's state.
/// nullopt when every replica (and the original) crashed — replication's
/// failure mode once faults exceed f.
[[nodiscard]] std::optional<State> replica_recover_crash(
    std::span<const std::optional<State>> replica_states);

/// Byzantine recovery for one replicated machine: strict majority over the
/// 2f+1 reported states (original + 2f copies). nullopt when no strict
/// majority exists.
[[nodiscard]] std::optional<State> replica_recover_byzantine(
    std::span<const State> reported_states);

}  // namespace ffsm
