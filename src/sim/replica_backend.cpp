#include "sim/replica_backend.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "obs/obs.hpp"
#include "util/contracts.hpp"

namespace ffsm {
namespace {

Frame command_frame(FrameType type) {
  Frame frame;
  frame.type = type;
  return frame;
}

}  // namespace

ReplicaBackend::ReplicaBackend(ReplicaBackendOptions options)
    : options_(std::move(options)) {
  FFSM_EXPECTS(!options_.endpoints.empty());
  for (const net::Endpoint& endpoint : options_.endpoints)
    FFSM_EXPECTS(endpoint.port != 0);
  if (options_.monitor)
    for (const net::Endpoint& endpoint : options_.endpoints)
      options_.monitor->watch(endpoint);
}

ReplicaBackend::~ReplicaBackend() { shutdown(); }

void ReplicaBackend::drop_connection_locked() noexcept {
  // Exchanges still on this conversation keep it alive through their
  // shared_ptr; they fail with NetError once it is poisoned, not here.
  conversation_.reset();
}

std::vector<std::size_t> ReplicaBackend::scan_order() const {
  std::vector<std::size_t> order(options_.endpoints.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (!options_.monitor) return order;
  // Verdicts reorder, never exclude: kUp first, then kUnknown, then kDown,
  // priority (seed-list) order within each — stable_sort keeps it. Ranks
  // are snapshot once before sorting: the prober publishes concurrently,
  // and a comparator whose answers shift mid-sort breaks stable_sort's
  // strict-weak-ordering precondition.
  std::vector<int> rank(order.size());
  for (std::size_t replica = 0; replica < order.size(); ++replica) {
    switch (options_.monitor->health(options_.endpoints[replica]).state) {
      case net::ProbeState::kUp:
        rank[replica] = 0;
        break;
      case net::ProbeState::kUnknown:
        rank[replica] = 1;
        break;
      case net::ProbeState::kDown:
        rank[replica] = 2;
        break;
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return rank[a] < rank[b];
                   });
  return order;
}

void ReplicaBackend::connect_endpoint_locked(std::size_t replica) {
  const net::Endpoint& endpoint = options_.endpoints[replica];
  net::Socket socket = net::Socket::connect(endpoint.host, endpoint.port,
                                            options_.connect_timeout);
  // Serve reads carry no deadline (generation legitimately takes long),
  // so keepalive is what bounds a half-open connection: a vanished
  // replica host turns into a read error after idle + interval * probes
  // seconds, and the failover path takes over from there.
  if (options_.keepalive_idle_s > 0)
    socket.enable_keepalive(options_.keepalive_idle_s,
                            options_.keepalive_interval_s,
                            options_.keepalive_probes);
  net::LineChannel channel(std::move(socket));
  // Negotiation first (the worker answers before any serving state
  // exists), then the handshake in the agreed encoding. A listen-mode
  // worker starts every connection with clean state, so the full
  // handshake replays: config, then every top in registration order —
  // which is why any replica serves bit-identically. NetError here routes
  // to the next replica; a worker that *answers* but wrongly throws
  // ContractViolation and is not routed around.
  std::unique_ptr<WireCodec> codec = negotiate_wire(channel, options_.wire);
  Frame config = command_frame(FrameType::kConfig);
  config.config = options_.config;
  channel.send(codec->encode(config));
  const Frame config_reply = codec->expect(channel, "config");
  if (config_reply.type != FrameType::kOk)
    throw ContractViolation("ReplicaBackend: worker rejected config (is " +
                            net::to_string(endpoint) +
                            " an ffsm_shard_worker --listen?): " +
                            describe_reply(config_reply));
  for (const std::string& key : top_order_) {
    Frame top = command_frame(FrameType::kTop);
    top.key = key;
    top.text = tops_.at(key).machine_text;
    channel.send(codec->encode(top));
    const Frame top_reply = codec->expect(channel, "top registration");
    if (top_reply.type != FrameType::kOk)
      throw ContractViolation("ReplicaBackend: worker at " +
                              net::to_string(endpoint) + " rejected top '" +
                              key + "': " + describe_reply(top_reply));
  }
  // Warm handoff: replay the last captured cache snapshots so a failover
  // (or fail-back) target serves its first drain with the previous
  // replica's hot set resident — same exchange discipline as the top
  // replay above, still pre-conversation on the raw channel.
  for (const std::string& key : top_order_) {
    const TopState& top = tops_.at(key);
    if (top.warm.empty()) continue;
    Frame warm = command_frame(FrameType::kCacheWarm);
    warm.key = key;
    warm.count = top.warm.size();
    warm.entries = top.warm;
    channel.send(codec->encode(warm));
    const Frame warm_reply = codec->expect(channel, "warm cache replay");
    if (warm_reply.type != FrameType::kOk)
      throw ContractViolation("ReplicaBackend: worker at " +
                              net::to_string(endpoint) +
                              " rejected warm cache for '" + key +
                              "': " + describe_reply(warm_reply));
  }
  conversation_ = std::make_shared<WireConversation>(
      std::move(channel), std::move(codec), options_.obs);
  ++connects_;
  // A reconnect that lands on a different replica is a failover (or a
  // fail-back — both move the serving endpoint); the first connection
  // ever is neither.
  if (connects_ > 1 && replica != current_) {
    ++failovers_;
    if (options_.obs != nullptr)
      options_.obs->instant("replica.failover",
                            {.shard = net::to_string(endpoint)});
  }
  current_ = replica;
}

void ReplicaBackend::connect_any() {
  std::string last_error = "empty replica set";
  for (const std::size_t replica : scan_order()) {
    try {
      // The lock is taken per endpoint, not across the scan: one lock
      // hold is bounded by a single connect_timeout (the PR-4 TcpBackend
      // bound), never by seed-list-size timeouts — submit()/pending()/
      // stats() squeeze in between attempts against a dead replica set.
      const std::lock_guard<std::mutex> lock(mutex_);
      if (conversation_ && !conversation_->poisoned())
        return;  // raced a concurrent connector
      conversation_.reset();
      connect_endpoint_locked(replica);
      return;
    } catch (const net::NetError& error) {
      last_error = error.what();
      if (last_error.rfind("net: ", 0) == 0)
        last_error.erase(0, 5);  // the rethrow below re-adds the prefix
    }
  }
  throw net::NetError("no replica of " +
                      std::to_string(options_.endpoints.size()) +
                      " reachable; last: " + last_error);
}

void ReplicaBackend::maybe_fail_back_locked() {
  if (!options_.monitor || !conversation_ || current_ == 0) return;
  // Moving the connection is only lossless while nothing is in flight on
  // the wire; with exchanges active, fail-back waits for a later drain.
  if (conversation_->active_exchanges() != 0) return;
  for (std::size_t replica = 0; replica < current_; ++replica) {
    if (options_.monitor->health(options_.endpoints[replica]).state !=
        net::ProbeState::kUp)
      continue;
    // An earlier-priority replica probes healthy again: move back to it.
    drop_connection_locked();
    return;
  }
}

void ReplicaBackend::ensure_connected() {
  // with_retry sleeps between rounds with no lock held, and connect_any
  // locks per endpoint: a replica set that is restarting must not block
  // this shard's submit()/pending()/stats() for seconds of backoff or
  // for a whole-seed-list scan of connect timeouts.
  net::with_retry(options_.connect_retry, [&] {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (conversation_ && conversation_->poisoned())
        drop_connection_locked();
      maybe_fail_back_locked();
      if (conversation_) return;
    }
    connect_any();
  });
}

void ReplicaBackend::register_added_top_locked(const std::string& key) {
  if (!conversation_ || conversation_->poisoned()) return;
  try {
    // A live connection learns the top through its own exchange — on the
    // binary wire this interleaves with in-flight drains; on the text
    // wire it waits for the connection like any other exchange.
    WireConversation::Exchange exchange =
        WireConversation::open(conversation_);
    Frame top = command_frame(FrameType::kTop);
    top.key = key;
    top.text = tops_.at(key).machine_text;
    exchange.send(std::move(top));
    const Frame reply = exchange.receive();
    if (reply.type == FrameType::kOk) return;
    if (reply.type != FrameType::kError)
      conversation_->poison("unexpected top reply");
    throw ContractViolation("ReplicaBackend: worker at " +
                            net::to_string(options_.endpoints[current_]) +
                            " rejected top '" + key +
                            "': " + describe_reply(reply));
  } catch (const net::NetError&) {
    // The connection is dead, not the registration: drop it so the next
    // attempt reconnects lazily instead of re-hitting a corpse.
    drop_connection_locked();
    throw;
  }
}

std::mutex& ReplicaBackend::serve_gate(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return *serve_gates_.try_emplace(key, std::make_unique<std::mutex>())
              .first->second;
}

std::vector<FusionResponse> ReplicaBackend::serve_exchange(
    const std::shared_ptr<WireConversation>& conversation,
    const std::string& key, const std::vector<WireRequest>& batch) {
  std::vector<FusionResponse> responses;
  responses.reserve(batch.size());
  const std::size_t window = std::max<std::size_t>(1, options_.serve_window);
  for (std::size_t start = 0; start < batch.size(); start += window) {
    // The backpressure window: at most `window` request frames are on the
    // wire before we block on their responses. A wedged replica stalls
    // this drain here, with one window buffered, instead of swallowing
    // the whole backlog.
    const std::size_t count = std::min(window, batch.size() - start);
    WireConversation::Exchange exchange =
        WireConversation::open(conversation);
    std::vector<Frame> frames;
    frames.reserve(count + 1);
    Frame serve = command_frame(FrameType::kServe);
    serve.key = key;
    serve.count = count;
    // Trace stitching: the innermost parent-side span (cluster.serve_top)
    // becomes the parent of the worker's gen.* spans for this window.
    serve.parent = obs::current_span_id();
    frames.push_back(std::move(serve));
    for (std::size_t i = 0; i < count; ++i) {
      Frame request = command_frame(FrameType::kRequest);
      request.request = batch[start + i];
      frames.push_back(std::move(request));
    }
    // One send, one buffer: the serve command and its requests are
    // contiguous on the wire even while other exchanges interleave.
    exchange.send(std::move(frames));

    const Frame header = exchange.receive();
    if (header.type == FrameType::kError) {
      // The replica is alive and in sync — the batch itself failed. The
      // whole backlog stays queued for the cluster's retry path; windows
      // already served this round get re-served then, which is harmless
      // (generation is deterministic) and costs only worker counters.
      throw ContractViolation("ReplicaBackend: worker failed to serve '" +
                              key + "': " + header.text);
    }
    if (header.type != FrameType::kServing || header.count != count) {
      conversation->poison("unexpected serve reply");
      throw ContractViolation("ReplicaBackend: unexpected serve reply '" +
                              std::string(frame_type_name(header.type)) +
                              "'");
    }
    for (std::size_t i = 0; i < count; ++i) {
      Frame reply = exchange.receive();
      if (reply.type != FrameType::kResponse) {
        conversation->poison("serve response missing");
        throw ContractViolation("ReplicaBackend: expected response, got '" +
                                std::string(frame_type_name(reply.type)) +
                                "'");
      }
      responses.push_back(std::move(reply.response));
    }
    const Frame done = exchange.receive();
    if (done.type != FrameType::kDone) {
      conversation->poison("serve trailer missing");
      throw ContractViolation("ReplicaBackend: expected 'done', got '" +
                              std::string(frame_type_name(done.type)) + "'");
    }
  }
  return responses;
}

std::vector<FusionResponse> ReplicaBackend::drain(const std::string& key) {
  // One drain per top at a time; drains for *different* tops proceed
  // concurrently and, on the binary wire, interleave their exchanges on
  // the shared connection.
  const std::lock_guard<std::mutex> serialize(serve_gate(key));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (top_of(key).queue.empty()) return {};
  }
  // In-flight re-submit across the replica set: a connection that drops
  // mid-exchange is replaced (each attempt reconnects to the best replica
  // reachable, under connect_retry) and the batch re-sent,
  // options_.serve_retry.max_attempts times in total. Anything else —
  // protocol errors, worker-side batch failures — propagates immediately
  // with the batch still queued. All backoff sleeps run unlocked, and so
  // does the wire I/O itself.
  return net::with_retry(
      options_.serve_retry, [&]() -> std::vector<FusionResponse> {
        ensure_connected();
        std::shared_ptr<WireConversation> conversation;
        std::vector<WireRequest> batch;
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          if (!conversation_)
            throw net::NetError("connection lost before serve");
          conversation = conversation_;
          TopState& top = top_of(key);
          if (top.queue.empty()) return {};  // discarded while connecting
          // Copy, don't move: the queue stays authoritative until every
          // response of the batch has arrived.
          batch = top.queue;
        }
        std::vector<FusionResponse> responses;
        try {
          responses = serve_exchange(conversation, key, batch);
        } catch (const net::NetError&) {
          const std::lock_guard<std::mutex> lock(mutex_);
          if (conversation_ == conversation) drop_connection_locked();
          throw;
        }
        // Only now is the exchange complete — every response arrived,
        // nothing can be lost. Drop exactly the batch's tickets: submits
        // that arrived during the exchange stay queued for the next
        // drain, and a discard_pending that raced it stays a no-op.
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          TopState& top = top_of(key);
          std::unordered_set<std::uint64_t> served;
          served.reserve(batch.size());
          for (const WireRequest& request : batch)
            served.insert(request.ticket);
          std::erase_if(top.queue, [&](const WireRequest& request) {
            return served.contains(request.ticket);
          });
        }
        capture_warm_snapshot(conversation, key);
        return responses;
      });
}

void ReplicaBackend::capture_warm_snapshot(
    const std::shared_ptr<WireConversation>& conversation,
    const std::string& key) {
  // Best-effort: the drain already completed, so a failure here only
  // costs the snapshot a future failover would have replayed.
  try {
    WireConversation::Exchange exchange =
        WireConversation::open(conversation);
    Frame query = command_frame(FrameType::kCacheWarm);
    query.key = key;
    query.count = kWarmSnapshotEntries;
    exchange.send(std::move(query));
    Frame reply = exchange.receive();
    if (reply.type != FrameType::kCacheWarm) {
      if (reply.type != FrameType::kError)
        conversation->poison("unexpected cachewarm reply");
      return;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    top_of(key).warm = std::move(reply.entries);
  } catch (const net::NetError&) {
    // Connection died after the batch completed; the next drain
    // reconnects (and replays whatever snapshot we last captured).
  } catch (const ContractViolation&) {
  }
}

void ReplicaBackend::fill_parent_counters_locked(ServiceStats& stats) const {
  // Per-connection worker counters reset with every replacement (real
  // process semantics); what this backend survived lives parent-side.
  stats.restarts = connects_ > 0 ? connects_ - 1 : 0;
  stats.failovers = failovers_;
  stats.health_probes_failed = 0;
  if (options_.monitor)
    for (const net::Endpoint& endpoint : options_.endpoints)
      stats.health_probes_failed +=
          options_.monitor->health(endpoint).probes_failed;
}

ServiceStats ReplicaBackend::stats(const std::string& key) const {
  std::shared_ptr<WireConversation> conversation;
  ServiceStats cold;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    (void)top_of(key);  // key must be registered
    fill_parent_counters_locked(cold);
    conversation = conversation_;
  }
  if (!conversation || conversation->poisoned()) return cold;
  try {
    WireConversation::Exchange exchange =
        WireConversation::open(conversation);
    Frame query = command_frame(FrameType::kStatsQuery);
    query.key = key;
    exchange.send(std::move(query));
    const Frame reply = exchange.receive();
    if (reply.type != FrameType::kStats) {
      if (reply.type != FrameType::kError)
        conversation->poison("unexpected stats reply");
      return cold;
    }
    ServiceStats remote = reply.stats;
    const std::lock_guard<std::mutex> lock(mutex_);
    fill_parent_counters_locked(remote);
    return remote;
  } catch (const ContractViolation&) {
    // Transport or protocol died mid-query (the conversation is already
    // poisoned); the next drain reconnects.
    return cold;
  }
}

obs::ObsSnapshot ReplicaBackend::obs_snapshot() {
  std::shared_ptr<WireConversation> conversation;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    conversation = conversation_;
  }
  // Disconnected => this incarnation has observed nothing; parent-side
  // timing (wire, queueing) lives in the cluster's own Obs already.
  if (!conversation || conversation->poisoned()) return {};
  try {
    WireConversation::Exchange exchange =
        WireConversation::open(conversation);
    // An empty kObs frame is the query form; the reply carries the
    // replica's per-connection snapshot (mirrors the kCacheWarm query).
    exchange.send(command_frame(FrameType::kObs));
    Frame reply = exchange.receive();
    if (reply.type != FrameType::kObs) {
      if (reply.type != FrameType::kError)
        conversation->poison("unexpected obs reply");
      return {};
    }
    return std::move(reply.obs);
  } catch (const ContractViolation&) {
    // Transport (NetError derives from this) or protocol died mid-query;
    // the conversation is already poisoned and the next drain reconnects.
    return {};
  }
}

void ReplicaBackend::shutdown() {
  std::shared_ptr<WireConversation> conversation;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    conversation = std::move(conversation_);
  }
  if (!conversation) return;
  // Fire-and-close: waiting for "bye" would block shutdown on a vanished
  // peer (serve reads carry no deadline), and the worker ends the
  // connection on EOF just the same.
  conversation->send_goodbye(command_frame(FrameType::kShutdown));
  conversation->poison("shutdown");
}

std::uint64_t ReplicaBackend::connects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return connects_;
}

bool ReplicaBackend::connected() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return conversation_ != nullptr && !conversation_->poisoned();
}

std::uint64_t ReplicaBackend::failovers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failovers_;
}

std::size_t ReplicaBackend::current_replica() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::string ReplicaBackend::wire_name() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return conversation_ ? conversation_->wire_name() : "";
}

}  // namespace ffsm
