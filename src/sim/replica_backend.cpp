#include "sim/replica_backend.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "util/contracts.hpp"

namespace ffsm {

ReplicaBackend::ReplicaBackend(ReplicaBackendOptions options)
    : options_(std::move(options)) {
  FFSM_EXPECTS(!options_.endpoints.empty());
  for (const net::Endpoint& endpoint : options_.endpoints)
    FFSM_EXPECTS(endpoint.port != 0);
  if (options_.monitor)
    for (const net::Endpoint& endpoint : options_.endpoints)
      options_.monitor->watch(endpoint);
}

ReplicaBackend::~ReplicaBackend() { shutdown(); }

void ReplicaBackend::drop_connection_locked() noexcept { channel_.close(); }

std::vector<std::size_t> ReplicaBackend::scan_order() const {
  std::vector<std::size_t> order(options_.endpoints.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (!options_.monitor) return order;
  // Verdicts reorder, never exclude: kUp first, then kUnknown, then kDown,
  // priority (seed-list) order within each — stable_sort keeps it. Ranks
  // are snapshot once before sorting: the prober publishes concurrently,
  // and a comparator whose answers shift mid-sort breaks stable_sort's
  // strict-weak-ordering precondition.
  std::vector<int> rank(order.size());
  for (std::size_t replica = 0; replica < order.size(); ++replica) {
    switch (options_.monitor->health(options_.endpoints[replica]).state) {
      case net::ProbeState::kUp:
        rank[replica] = 0;
        break;
      case net::ProbeState::kUnknown:
        rank[replica] = 1;
        break;
      case net::ProbeState::kDown:
        rank[replica] = 2;
        break;
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return rank[a] < rank[b];
                   });
  return order;
}

void ReplicaBackend::register_top_locked(const std::string& key,
                                         const TopState& top) {
  channel_.send("top " + escape_token(key) + '\n' + top.machine_text);
  const std::string reply = channel_.expect_line("top registration");
  if (reply != "ok") {
    drop_connection_locked();
    throw ContractViolation("ReplicaBackend: worker at " +
                            net::to_string(options_.endpoints[current_]) +
                            " rejected top '" + key + "': " + reply);
  }
}

void ReplicaBackend::connect_endpoint_locked(std::size_t replica) {
  const net::Endpoint& endpoint = options_.endpoints[replica];
  net::Socket socket = net::Socket::connect(endpoint.host, endpoint.port,
                                            options_.connect_timeout);
  // Serve reads carry no deadline (generation legitimately takes long),
  // so keepalive is what bounds a half-open connection: a vanished
  // replica host turns into a read error after idle + interval * probes
  // seconds, and the failover path takes over from there.
  if (options_.keepalive_idle_s > 0)
    socket.enable_keepalive(options_.keepalive_idle_s,
                            options_.keepalive_interval_s,
                            options_.keepalive_probes);
  channel_ = net::LineChannel(std::move(socket));
  try {
    // A listen-mode worker starts every connection with clean state, so
    // the full handshake replays: config, then every top in registration
    // order — which is why any replica serves bit-identically.
    channel_.send(encode_config(options_.config));
    const std::string reply = channel_.expect_line("config");
    if (reply != "ok") {
      drop_connection_locked();
      throw ContractViolation("ReplicaBackend: worker rejected config (is " +
                              net::to_string(endpoint) +
                              " an ffsm_shard_worker --listen?): " + reply);
    }
    for (const std::string& key : top_order_)
      register_top_locked(key, tops_.at(key));
  } catch (const net::NetError&) {
    drop_connection_locked();  // half-shaken connection is unusable
    throw;
  }
  ++connects_;
  // A reconnect that lands on a different replica is a failover (or a
  // fail-back — both move the serving endpoint); the first connection
  // ever is neither.
  if (connects_ > 1 && replica != current_) ++failovers_;
  current_ = replica;
}

void ReplicaBackend::connect_any() {
  std::string last_error = "empty replica set";
  for (const std::size_t replica : scan_order()) {
    try {
      // The lock is taken per endpoint, not across the scan: one lock
      // hold is bounded by a single connect_timeout (the PR-4 TcpBackend
      // bound), never by seed-list-size timeouts — submit()/pending()/
      // stats() squeeze in between attempts against a dead replica set.
      const std::lock_guard<std::mutex> lock(mutex_);
      if (channel_.valid()) return;  // raced a concurrent connector
      connect_endpoint_locked(replica);
      return;
    } catch (const net::NetError& error) {
      last_error = error.what();
      if (last_error.rfind("net: ", 0) == 0)
        last_error.erase(0, 5);  // the rethrow below re-adds the prefix
    }
  }
  throw net::NetError("no replica of " +
                      std::to_string(options_.endpoints.size()) +
                      " reachable; last: " + last_error);
}

void ReplicaBackend::maybe_fail_back_locked() {
  if (!options_.monitor || !channel_.valid() || current_ == 0) return;
  for (std::size_t replica = 0; replica < current_; ++replica) {
    if (options_.monitor->health(options_.endpoints[replica]).state !=
        net::ProbeState::kUp)
      continue;
    // An earlier-priority replica probes healthy again: move back to it.
    // Dropping here is lossless — nothing is on the wire between
    // exchanges, and the backlog is queued parent-side.
    drop_connection_locked();
    return;
  }
}

void ReplicaBackend::ensure_connected() {
  // with_retry sleeps between rounds with no lock held, and connect_any
  // locks per endpoint: a replica set that is restarting must not block
  // this shard's submit()/pending()/stats() for seconds of backoff or
  // for a whole-seed-list scan of connect timeouts.
  net::with_retry(options_.connect_retry, [&] {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      maybe_fail_back_locked();
      if (channel_.valid()) return;
    }
    connect_any();
  });
}

void ReplicaBackend::register_added_top_locked(const std::string& key) {
  if (!channel_.valid()) return;
  try {
    register_top_locked(key, tops_.at(key));
  } catch (const net::NetError&) {
    // The connection is dead, not the registration: drop it so the next
    // attempt reconnects lazily instead of re-hitting a corpse that
    // still reports valid().
    drop_connection_locked();
    throw;
  }
}

std::vector<FusionResponse> ReplicaBackend::serve_batch_locked(
    const std::string& key, TopState& top) {
  std::vector<FusionResponse> responses;
  responses.reserve(top.queue.size());
  const std::size_t window = std::max<std::size_t>(1, options_.serve_window);
  for (std::size_t start = 0; start < top.queue.size(); start += window) {
    // The backpressure window: at most `window` request frames are on the
    // wire before we block on their responses. A wedged replica stalls
    // this drain here, with one window buffered, instead of swallowing
    // the whole backlog.
    const std::size_t count = std::min(window, top.queue.size() - start);
    std::string msg = "serve " + escape_token(key) + ' ' +
                      std::to_string(count) + '\n';
    for (std::size_t i = 0; i < count; ++i)
      msg += encode_request(top.queue[start + i]);
    channel_.send(msg);

    const std::string header = channel_.expect_line("serve");
    std::istringstream words(header);
    std::string directive;
    words >> directive;
    if (directive == "error") {
      // The replica is alive and in sync — the batch itself failed. The
      // whole backlog stays queued for the cluster's retry path; windows
      // already served this round get re-served then, which is harmless
      // (generation is deterministic) and costs only worker counters.
      throw ContractViolation("ReplicaBackend: worker failed to serve '" +
                              key + "': " + error_detail(words));
    }
    std::size_t n = 0;
    if (directive != "serving" || !(words >> n) || n != count) {
      drop_connection_locked();
      throw ContractViolation("ReplicaBackend: unexpected serve reply '" +
                              header + "'");
    }
    try {
      for (std::size_t i = 0; i < n; ++i)
        responses.push_back(decode_response(
            channel_.read_frame(channel_.expect_line("response"),
                                "response")));
      const std::string done = channel_.expect_line("serve trailer");
      if (done != "done")
        throw ContractViolation("ReplicaBackend: expected 'done', got '" +
                                done + "'");
    } catch (const net::NetError&) {
      throw;  // transport died; drain() fails over and re-submits
    } catch (const ContractViolation&) {
      // A frame failed to decode: the stream position is unknowable, so
      // the connection must go; the batch stays queued.
      drop_connection_locked();
      throw;
    }
  }
  // Only now is the exchange complete — every response arrived, nothing
  // can be lost. Responses are in queue order == ticket order.
  top.queue.clear();
  return responses;
}

std::vector<FusionResponse> ReplicaBackend::drain(const std::string& key) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (top_of(key).queue.empty()) return {};
  }
  // In-flight re-submit across the replica set: a connection that drops
  // mid-exchange is replaced (each attempt reconnects to the best replica
  // reachable, under connect_retry) and the batch re-sent,
  // options_.serve_retry.max_attempts times in total. Anything else —
  // protocol errors, worker-side batch failures — propagates immediately
  // with the batch still queued. All backoff sleeps run unlocked.
  return net::with_retry(
      options_.serve_retry, [&]() -> std::vector<FusionResponse> {
        try {
          ensure_connected();
          const std::lock_guard<std::mutex> lock(mutex_);
          TopState& top = top_of(key);
          if (top.queue.empty()) return {};  // discarded while connecting
          return serve_batch_locked(key, top);
        } catch (const net::NetError&) {
          const std::lock_guard<std::mutex> lock(mutex_);
          drop_connection_locked();
          throw;
        }
      });
}

void ReplicaBackend::fill_parent_counters_locked(ServiceStats& stats) const {
  // Per-connection worker counters reset with every replacement (real
  // process semantics); what this backend survived lives parent-side.
  stats.restarts = connects_ > 0 ? connects_ - 1 : 0;
  stats.failovers = failovers_;
  stats.health_probes_failed = 0;
  if (options_.monitor)
    for (const net::Endpoint& endpoint : options_.endpoints)
      stats.health_probes_failed +=
          options_.monitor->health(endpoint).probes_failed;
}

ServiceStats ReplicaBackend::stats(const std::string& key) const {
  auto* self = const_cast<ReplicaBackend*>(this);
  const std::lock_guard<std::mutex> lock(mutex_);
  (void)top_of(key);  // key must be registered
  ServiceStats cold;
  fill_parent_counters_locked(cold);
  if (!channel_.valid()) return cold;
  try {
    self->channel_.send("stats " + escape_token(key) + '\n');
    const std::string first = self->channel_.expect_line("stats");
    if (first.rfind("error", 0) == 0) return cold;
    ServiceStats remote =
        decode_stats(self->channel_.read_frame(first, "stats"));
    fill_parent_counters_locked(remote);
    return remote;
  } catch (const ContractViolation&) {
    // Transport or protocol died mid-query; the next drain reconnects.
    self->drop_connection_locked();
    return cold;
  }
}

void ReplicaBackend::shutdown() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!channel_.valid()) return;
  try {
    // Fire-and-close: waiting for "bye" would block shutdown on a
    // vanished peer (serve reads carry no deadline), and the worker ends
    // the connection on EOF just the same.
    channel_.send("shutdown\n");
  } catch (const ContractViolation&) {
  }
  drop_connection_locked();
}

std::uint64_t ReplicaBackend::connects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return connects_;
}

bool ReplicaBackend::connected() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return channel_.valid();
}

std::uint64_t ReplicaBackend::failovers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failovers_;
}

std::size_t ReplicaBackend::current_replica() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

}  // namespace ffsm
