#include "sim/backend.hpp"

#include <utility>

#include "fsm/serialize.hpp"
#include "util/contracts.hpp"

namespace ffsm {

// ---------------------------------------------------- QueuedWireBackend

QueuedWireBackend::TopState& QueuedWireBackend::top_of(
    const std::string& key) {
  const auto it = tops_.find(key);
  FFSM_EXPECTS(it != tops_.end());
  return it->second;
}

const QueuedWireBackend::TopState& QueuedWireBackend::top_of(
    const std::string& key) const {
  const auto it = tops_.find(key);
  FFSM_EXPECTS(it != tops_.end());
  return it->second;
}

std::string QueuedWireBackend::error_detail(std::istringstream& words) {
  std::string token;
  std::string detail = "unknown error";
  if (words >> token && token != "%") {
    try {
      detail = unescape_token(token);
    } catch (const ContractViolation&) {
      detail = token;  // garbled escape: better raw than masked
    }
  }
  return detail;
}

std::string QueuedWireBackend::describe_reply(const Frame& reply) {
  if (reply.type == FrameType::kError) return reply.text;
  return std::string("unexpected '") + frame_type_name(reply.type) +
         "' reply";
}

void QueuedWireBackend::add_top(const std::string& key, const Dfsm& top) {
  const std::lock_guard<std::mutex> lock(mutex_);
  FFSM_EXPECTS(!tops_.contains(key));
  TopState state;
  state.machine_text = to_text(top);  // self-contained: alphabet header
  state.top_size = top.size();
  tops_.emplace(key, std::move(state));
  top_order_.push_back(key);
  // Roll our entry back on failure — the cluster rolls its own back too,
  // and a key the cluster denies must not linger here blocking
  // re-registration.
  try {
    register_added_top_locked(key);
  } catch (...) {
    tops_.erase(key);
    top_order_.pop_back();
    throw;
  }
}

void QueuedWireBackend::validate(const std::string& key,
                                 const FusionRequest& request) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const TopState& top = top_of(key);
  for (const Partition& p : request.originals)
    FFSM_EXPECTS(p.size() == top.top_size);
}

std::uint64_t QueuedWireBackend::submit(const std::string& key,
                                        std::string client,
                                        FusionRequest request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TopState& top = top_of(key);
  const std::uint64_t ticket = next_ticket_++;
  top.queue.push_back({ticket, std::move(client), std::move(request)});
  return ticket;
}

std::size_t QueuedWireBackend::pending(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return top_of(key).queue.size();
}

std::size_t QueuedWireBackend::discard_pending(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TopState& top = top_of(key);
  const std::size_t count = top.queue.size();
  top.queue.clear();
  return count;
}

// ----------------------------------------------------- InProcessBackend

InProcessBackend::InProcessBackend(FusionServiceOptions options)
    : options_(options) {}

FusionService& InProcessBackend::service_of(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = services_.find(key);
  FFSM_EXPECTS(it != services_.end());
  return *it->second;
}

void InProcessBackend::add_top(const std::string& key, const Dfsm& top) {
  // Each service tags its spans with its serving key, so one shared Obs
  // still tells the tops apart.
  FusionServiceOptions per_top = options_;
  per_top.obs_top = key;
  auto service = std::make_unique<FusionService>(top, per_top);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = services_.try_emplace(key, std::move(service));
  FFSM_EXPECTS(inserted);
}

void InProcessBackend::validate(const std::string& key,
                                const FusionRequest& request) const {
  service_of(key).validate(request);
}

std::uint64_t InProcessBackend::submit(const std::string& key,
                                       std::string client,
                                       FusionRequest request) {
  return service_of(key).submit(std::move(client), std::move(request));
}

std::size_t InProcessBackend::pending(const std::string& key) const {
  return service_of(key).pending();
}

std::size_t InProcessBackend::discard_pending(const std::string& key) {
  return service_of(key).discard_pending();
}

std::vector<FusionResponse> InProcessBackend::drain(const std::string& key) {
  return service_of(key).drain();
}

ServiceStats InProcessBackend::stats(const std::string& key) const {
  return service_of(key).stats();
}

const FusionService& InProcessBackend::service(const std::string& key) const {
  return service_of(key);
}

}  // namespace ffsm
