#include "sim/backend.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace ffsm {

InProcessBackend::InProcessBackend(FusionServiceOptions options)
    : options_(options) {}

FusionService& InProcessBackend::service_of(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = services_.find(key);
  FFSM_EXPECTS(it != services_.end());
  return *it->second;
}

void InProcessBackend::add_top(const std::string& key, const Dfsm& top) {
  auto service = std::make_unique<FusionService>(top, options_);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = services_.try_emplace(key, std::move(service));
  FFSM_EXPECTS(inserted);
}

void InProcessBackend::validate(const std::string& key,
                                const FusionRequest& request) const {
  service_of(key).validate(request);
}

std::uint64_t InProcessBackend::submit(const std::string& key,
                                       std::string client,
                                       FusionRequest request) {
  return service_of(key).submit(std::move(client), std::move(request));
}

std::size_t InProcessBackend::pending(const std::string& key) const {
  return service_of(key).pending();
}

std::size_t InProcessBackend::discard_pending(const std::string& key) {
  return service_of(key).discard_pending();
}

std::vector<FusionResponse> InProcessBackend::drain(const std::string& key) {
  return service_of(key).drain();
}

ServiceStats InProcessBackend::stats(const std::string& key) const {
  return service_of(key).stats();
}

const FusionService& InProcessBackend::service(const std::string& key) const {
  return service_of(key);
}

}  // namespace ffsm
