// SubprocessBackend: a cluster shard served by a worker OS process.
//
// The first out-of-process ShardBackend: one `ffsm_shard_worker` process
// per shard, speaking the negotiated wire protocol (sim/messages.hpp)
// over a socketpair bridged to the worker's stdin/stdout. Machines travel
// as self-contained to_text (alphabet header included), so the worker
// reconstructs bit-exact transition tables and serves bit-identical
// fusions to the in-process backend. By default the backend offers the
// binary framing at spawn and falls back to text against an old worker
// binary; either way the exchanges below are the same Frames.
//
// Queueing lives parent-side: submit() queues here, drain(key) ships the
// whole backlog as one `serve` exchange and clears it only once every
// response arrived. A worker death (EOF / failed write mid-exchange) is
// therefore never lossy: the backend reaps the corpse, throws from
// drain(), and the cluster's existing failed-drain path retries the still-
// queued requests on its next round — at which point the backend respawns
// a fresh worker and re-registers its tops. A restarted worker restarts
// its counters and caches (exactly like any real process-level state);
// results are unaffected because caches never change results.
//
// Parent <-> worker exchanges (one in flight at a time, serialized on an
// internal mutex; Frame types of sim/messages.hpp):
//   config / top                       -> ok | error          (at spawn)
//   serve + n request frames           -> serving + n responses + done
//                                         | error
//   stats query                        -> stats | error
//   cachewarm query / import           -> cachewarm | ok | error
//   shutdown                           -> bye, then worker exit
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/line_channel.hpp"
#include "sim/backend.hpp"

namespace ffsm {

/// Resolves the shard-worker binary shared by the out-of-process backends:
/// explicit path if non-empty, else $FFSM_SHARD_WORKER, else
/// "ffsm_shard_worker" next to the current executable (tests, benches and
/// the worker all land in the same build directory).
[[nodiscard]] std::string discover_worker_path(
    const std::string& explicit_path);

struct SubprocessBackendOptions {
  /// Path to the ffsm_shard_worker binary. Empty = $FFSM_SHARD_WORKER,
  /// falling back to "ffsm_shard_worker" next to the current executable.
  std::string worker_path;
  /// Wire-safe service options sent to the worker at every (re)spawn.
  ShardServiceConfig config = {};
  /// Negotiation stance at every (re)spawn (see sim/messages.hpp): kAuto
  /// offers the binary framing and falls back to text against an old
  /// worker binary; kText pins the pre-negotiation wire; kBinary requires
  /// the binary framing and fails the spawn handshake otherwise.
  WireMode wire = WireMode::kAuto;
  /// Optional observability context (nullptr = uninstrumented): the
  /// backend emits a `worker.respawn` instant event per respawn, and
  /// obs_snapshot() pulls the worker's own counters/histograms/spans over
  /// the wire (kObs).
  obs::Obs* obs = nullptr;
};

class SubprocessBackend final : public QueuedWireBackend {
 public:
  explicit SubprocessBackend(SubprocessBackendOptions options = {});
  ~SubprocessBackend() override;

  SubprocessBackend(const SubprocessBackend&) = delete;
  SubprocessBackend& operator=(const SubprocessBackend&) = delete;

  // add_top / validate / submit / pending / discard_pending: the shared
  // parent-side queueing of QueuedWireBackend.
  std::vector<FusionResponse> drain(const std::string& key) override;
  /// Worker counters for `key`; all-zero when no worker is running (a
  /// fresh or just-crashed shard really has served nothing), with
  /// `restarts` filled parent-side from the spawn count.
  [[nodiscard]] ServiceStats stats(const std::string& key) const override;
  /// The live worker's observability snapshot via a kObs exchange; empty
  /// when no worker is running or the query fails (the next drain
  /// respawns).
  [[nodiscard]] obs::ObsSnapshot obs_snapshot() override;
  /// Graceful worker termination (`shutdown` + EOF + waitpid). Queued
  /// requests stay queued; the next drain() respawns.
  void shutdown() override;

  /// Pid of the live worker, 0 when none — exposed so tests and fault
  /// injectors can kill the process underneath the backend.
  [[nodiscard]] int worker_pid() const;
  /// Workers (re)spawned so far — 1 after the first drain, +1 per restart.
  [[nodiscard]] std::uint64_t spawns() const;
  /// Negotiated encoding of the live worker's wire ("bin" or "text");
  /// empty while no worker is running.
  [[nodiscard]] std::string wire_name() const;

 private:
  /// A live worker learns new tops immediately; otherwise the next
  /// ensure_worker_locked() registers them with the rest.
  void register_added_top_locked(const std::string& key) override;

  /// Spawns + negotiates + configures + re-registers tops if no worker is
  /// running. Throws ContractViolation on spawn or handshake failure.
  void ensure_worker_locked();
  /// Reaps the worker (SIGKILL + waitpid) and closes the channel.
  void kill_worker_locked() noexcept;
  /// Sends the frame for one top and expects an ok frame.
  void register_top_locked(const std::string& key, const TopState& top);
  /// Ships a top's warm cache snapshot (if any) and expects an ok frame —
  /// the import half of the kCacheWarm handoff, run at every (re)spawn.
  void replay_warm_locked(const std::string& key, const TopState& top);

  /// I/O over the channel (net::LineChannel: full-buffer SIGPIPE-safe
  /// sends). send throws on a dead peer via die_locked; expect_frame
  /// throws (after reaping) on EOF or a transport error, and lets a
  /// malformed frame's ContractViolation propagate for the caller to
  /// decide.
  void send_locked(std::string_view data);
  [[nodiscard]] Frame expect_frame_locked(const char* context);
  [[noreturn]] void die_locked(const std::string& what);

  SubprocessBackendOptions options_;
  int worker_pid_ = 0;
  net::LineChannel channel_;
  std::unique_ptr<WireCodec> codec_;  // live worker's negotiated encoding
  std::uint64_t spawns_ = 0;
};

}  // namespace ffsm
