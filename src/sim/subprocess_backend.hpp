// SubprocessBackend: a cluster shard served by a worker OS process.
//
// The first out-of-process ShardBackend: one `ffsm_shard_worker` process
// per shard, speaking the line-oriented wire protocol (sim/messages.hpp)
// over a socketpair bridged to the worker's stdin/stdout. Machines travel
// as self-contained to_text (alphabet header included), so the worker
// reconstructs bit-exact transition tables and serves bit-identical
// fusions to the in-process backend.
//
// Queueing lives parent-side: submit() queues here, drain(key) ships the
// whole backlog as one `serve` exchange and clears it only once every
// response arrived. A worker death (EOF / failed write mid-exchange) is
// therefore never lossy: the backend reaps the corpse, throws from
// drain(), and the cluster's existing failed-drain path retries the still-
// queued requests on its next round — at which point the backend respawns
// a fresh worker and re-registers its tops. A restarted worker restarts
// its counters and caches (exactly like any real process-level state);
// results are unaffected because caches never change results.
//
// Parent <-> worker exchanges (one in flight at a time, serialized on an
// internal mutex):
//   config / top <key> <machine-text>  -> ok | error <msg>   (at spawn)
//   serve <key> <n> + n request frames -> serving <n> + n response frames
//                                         + done | error <msg>
//   stats <key>                        -> stats frame | error <msg>
//   ping                               -> pong
//   shutdown                           -> bye, then worker exit
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/backend.hpp"

namespace ffsm {

struct SubprocessBackendOptions {
  /// Path to the ffsm_shard_worker binary. Empty = $FFSM_SHARD_WORKER,
  /// falling back to "ffsm_shard_worker" next to the current executable.
  std::string worker_path;
  /// Wire-safe service options sent to the worker at every (re)spawn.
  ShardServiceConfig config = {};
};

class SubprocessBackend final : public ShardBackend {
 public:
  explicit SubprocessBackend(SubprocessBackendOptions options = {});
  ~SubprocessBackend() override;

  SubprocessBackend(const SubprocessBackend&) = delete;
  SubprocessBackend& operator=(const SubprocessBackend&) = delete;

  void add_top(const std::string& key, const Dfsm& top) override;
  void validate(const std::string& key,
                const FusionRequest& request) const override;
  std::uint64_t submit(const std::string& key, std::string client,
                       FusionRequest request) override;
  [[nodiscard]] std::size_t pending(const std::string& key) const override;
  std::size_t discard_pending(const std::string& key) override;
  std::vector<FusionResponse> drain(const std::string& key) override;
  /// Worker counters for `key`; all-zero when no worker is running (a
  /// fresh or just-crashed shard really has served nothing).
  [[nodiscard]] ServiceStats stats(const std::string& key) const override;
  /// Graceful worker termination (`shutdown` + EOF + waitpid). Queued
  /// requests stay queued; the next drain() respawns.
  void shutdown() override;

  /// Pid of the live worker, 0 when none — exposed so tests and fault
  /// injectors can kill the process underneath the backend.
  [[nodiscard]] int worker_pid() const;
  /// Workers (re)spawned so far — 1 after the first drain, +1 per restart.
  [[nodiscard]] std::uint64_t spawns() const;

 private:
  struct TopState {
    std::string machine_text;   // self-contained to_text, for (re)register
    std::uint32_t top_size = 0;  // states, for caller-side validate
    std::vector<WireRequest> queue;  // accepted, not yet served
  };

  [[nodiscard]] TopState& top_of(const std::string& key);
  [[nodiscard]] const TopState& top_of(const std::string& key) const;

  /// Spawns + configures + re-registers tops if no worker is running.
  /// Throws ContractViolation on spawn or handshake failure.
  void ensure_worker_locked();
  /// Reaps the worker (SIGKILL + waitpid) and closes the channel.
  void kill_worker_locked() noexcept;
  /// Sends the frame for one top and expects "ok".
  void register_top_locked(const std::string& key, const TopState& top);

  /// I/O over the channel. send throws on a dead peer via die_locked;
  /// read_line returns false on EOF.
  void send_locked(std::string_view data);
  bool read_line_locked(std::string& line);
  /// Reads one reply line; throws (after reaping) on EOF.
  std::string expect_line_locked(const char* context);
  /// Reads frame lines up to and including the lone "end" terminator,
  /// starting from `first_line`.
  std::string read_frame_locked(std::string first_line, const char* context);
  [[noreturn]] void die_locked(const std::string& what);

  SubprocessBackendOptions options_;
  /// Serializes the wire conversation and guards all state below.
  mutable std::mutex mutex_;
  std::unordered_map<std::string, TopState> tops_;
  std::vector<std::string> top_order_;  // registration order for respawn
  int worker_pid_ = 0;
  int channel_fd_ = -1;
  std::string read_buffer_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t spawns_ = 0;
};

}  // namespace ffsm
