#include "sim/backend_config.hpp"

#include <utility>

#include "sim/replica_backend.hpp"
#include "sim/subprocess_backend.hpp"
#include "sim/tcp_backend.hpp"
#include "util/contracts.hpp"

namespace ffsm {

const char* backend_kind_name(BackendConfig::Kind kind) {
  switch (kind) {
    case BackendConfig::Kind::kInProcess:
      return "inprocess";
    case BackendConfig::Kind::kSubprocess:
      return "subprocess";
    case BackendConfig::Kind::kTcp:
      return "tcp";
    case BackendConfig::Kind::kReplica:
      return "replica-tcp";
  }
  return "?";  // unreachable: all enumerators covered above
}

bool parse_backend_kind(std::string_view name, BackendConfig::Kind& out) {
  if (name == "inprocess") {
    out = BackendConfig::Kind::kInProcess;
  } else if (name == "subprocess") {
    out = BackendConfig::Kind::kSubprocess;
  } else if (name == "tcp") {
    out = BackendConfig::Kind::kTcp;
  } else if (name == "replica-tcp") {
    out = BackendConfig::Kind::kReplica;
  } else {
    return false;
  }
  return true;
}

std::function<std::unique_ptr<ShardBackend>(std::size_t)>
make_backend_factory(BackendConfig config) {
  const char* const name = backend_kind_name(config.kind);
  const bool connecting = config.kind == BackendConfig::Kind::kTcp ||
                          config.kind == BackendConfig::Kind::kReplica;
  if (!connecting && !config.endpoints.empty())
    throw ContractViolation(std::string("BackendConfig: backend '") + name +
                            "' takes no endpoints");
  if (config.kind == BackendConfig::Kind::kTcp &&
      config.endpoints.size() != 1)
    throw ContractViolation(
        "BackendConfig: backend 'tcp' takes exactly one endpoint, got " +
        std::to_string(config.endpoints.size()));
  if (config.kind == BackendConfig::Kind::kReplica &&
      config.endpoints.empty())
    throw ContractViolation(
        "BackendConfig: backend 'replica-tcp' needs at least one endpoint");
  for (const net::Endpoint& endpoint : config.endpoints)
    if (endpoint.port == 0)
      throw ContractViolation("BackendConfig: endpoint '" + endpoint.host +
                              "' has port 0");

  switch (config.kind) {
    case BackendConfig::Kind::kInProcess:
      // The cluster's default backend already honours the service options
      // embedders set on FusionClusterOptions; an empty factory selects it.
      return {};
    case BackendConfig::Kind::kSubprocess:
      return [config = std::move(config)](std::size_t) {
        SubprocessBackendOptions options;
        options.worker_path = config.worker_path;
        options.config = config.service;
        options.wire = config.wire;
        options.obs = config.obs;
        return std::make_unique<SubprocessBackend>(std::move(options));
      };
    case BackendConfig::Kind::kTcp:
      return [config = std::move(config)](std::size_t) {
        TcpBackendOptions options;
        options.host = config.endpoints[0].host;
        options.port = config.endpoints[0].port;
        options.config = config.service;
        options.wire = config.wire;
        options.connect_timeout = config.connect_timeout;
        options.connect_retry = config.connect_retry;
        options.serve_retry = config.serve_retry;
        options.serve_window = config.serve_window;
        options.keepalive_idle_s = config.keepalive_idle_s;
        options.keepalive_interval_s = config.keepalive_interval_s;
        options.keepalive_probes = config.keepalive_probes;
        options.obs = config.obs;
        return std::make_unique<TcpBackend>(std::move(options));
      };
    case BackendConfig::Kind::kReplica:
      return [config = std::move(config)](std::size_t) {
        ReplicaBackendOptions options;
        options.endpoints = config.endpoints;
        options.config = config.service;
        options.wire = config.wire;
        options.connect_timeout = config.connect_timeout;
        options.connect_retry = config.connect_retry;
        options.serve_retry = config.serve_retry;
        options.serve_window = config.serve_window;
        options.keepalive_idle_s = config.keepalive_idle_s;
        options.keepalive_interval_s = config.keepalive_interval_s;
        options.keepalive_probes = config.keepalive_probes;
        options.monitor = config.monitor;
        options.obs = config.obs;
        return std::make_unique<ReplicaBackend>(std::move(options));
      };
  }
  return {};  // unreachable: all enumerators covered above
}

}  // namespace ffsm
