// Event sources for the distributed-system simulator.
//
// The paper's environment (clients) issues a totally ordered stream of
// events applied to every server (§2). An EventSource abstracts where that
// stream comes from: a fixed script, or a seeded random draw over the
// alphabet.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fsm/alphabet.hpp"
#include "util/rng.hpp"

namespace ffsm {

class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Next event in the stream; nullopt when exhausted.
  virtual std::optional<EventId> next() = 0;
};

/// Replays a fixed sequence.
class ScriptedEventSource final : public EventSource {
 public:
  explicit ScriptedEventSource(std::vector<EventId> events)
      : events_(std::move(events)) {}

  std::optional<EventId> next() override {
    if (position_ >= events_.size()) return std::nullopt;
    return events_[position_++];
  }

 private:
  std::vector<EventId> events_;
  std::size_t position_ = 0;
};

/// Draws `count` events uniformly from `support` (seeded, reproducible).
class RandomEventSource final : public EventSource {
 public:
  RandomEventSource(std::vector<EventId> support, std::size_t count,
                    std::uint64_t seed)
      : support_(std::move(support)), remaining_(count), rng_(seed) {}

  std::optional<EventId> next() override {
    if (remaining_ == 0 || support_.empty()) return std::nullopt;
    --remaining_;
    return support_[rng_.below(support_.size())];
  }

 private:
  std::vector<EventId> support_;
  std::size_t remaining_;
  Xoshiro256 rng_;
};

}  // namespace ffsm
