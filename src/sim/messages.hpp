// Wire protocol of the serving stack.
//
// A shard of the FusionCluster is a backend behind a message boundary (see
// sim/backend.hpp); this header defines the messages that cross it and
// their exact round-tripping text codec. Frames are line-oriented in the
// fsm/serialize style — a directive line opens the frame, key/value lines
// follow, and a lone `end` line closes it — so machines (to_text, which is
// self-contained via its alphabet header), requests, responses, stats and
// configs all travel the same way over any byte stream.
//
//   request <ticket> <client>             response <ticket> <client>
//   f <f>                                 fusion <b0> <b1> ...   (per machine)
//   policy <fewest_blocks|...>            stats <8 counters, fixed order>
//   original <b0> <b1> ...  (per orig)    end
//   end
//
//   stats                                 config
//   requests_submitted <n>                parallel <0|1>
//   ... (one counter per line)            threads <n>
//   end                                   incremental <0|1>
//                                         cache_policy <lru|epoch|...>
//                                         cache_capacity <n>
//                                         end
//
// Tokens that may contain arbitrary bytes (client names, top keys) are
// percent-escaped (escape_token); partitions travel as their normalized
// block assignments, so decode(encode(x)) == x and, for canonical frames,
// encode(decode(text)) == text byte for byte.
//
// Since PR 6 the text protocol above is one of two interchangeable
// encodings behind the WireCodec interface. The negotiated alternative is
// a length-prefixed binary framing (BinaryWireCodec) whose frames carry an
// exchange id, letting several serve exchanges interleave on one
// connection. See the WireCodec section below and README "Wire format".
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fusion/generator.hpp"
#include "net/line_channel.hpp"
#include "obs/obs.hpp"

namespace ffsm {

/// One served request crossing a backend boundary. FusionService::Response
/// is an alias of this — the in-process and wire representations are the
/// same type.
struct FusionResponse {
  std::uint64_t ticket = 0;
  std::string client;
  FusionResult result;
};

// The single source of truth for the ServiceStats counter set: one X(name,
// aggregation) row per counter, in wire order. Everything that enumerates
// the counters expands this table — the text codec's encode/decode lines,
// the binary codec's fixed-order u64 list, the duplicate/missing seen-bit
// bookkeeping, and FusionCluster::stats() aggregation — so adding a counter
// is one row here plus one struct field below (a mismatch between the two
// fails to compile). Appending a row changes the negotiated payload shape:
// bump the hello version (kHelloVersion in messages.cpp).
//
// The second column is the cluster aggregation rule:
//   kPerTop     — the counter is per-service; per-top values add up.
//   kPerBackend — the counter is backend-level and repeats identically for
//                 every top a backend hosts; FusionCluster::stats() takes
//                 the max across a shard's tops, then sums across shards.
#define FFSM_SERVICE_STATS_COUNTERS(X)          \
  X(requests_submitted, kPerTop)                \
  X(requests_served, kPerTop)                   \
  X(batches_served, kPerTop)                    \
  X(speculative_covers_launched, kPerTop)       \
  X(speculation_hits, kPerTop)                  \
  X(speculation_wasted_closures, kPerTop)       \
  X(restarts, kPerBackend)                      \
  X(failovers, kPerBackend)                     \
  X(health_probes_failed, kPerBackend)          \
  X(cache_hits, kPerTop)                        \
  X(cache_cold_misses, kPerTop)                 \
  X(cache_eviction_misses, kPerTop)             \
  X(cache_evictions, kPerTop)                   \
  X(cache_entries, kPerTop)                     \
  X(cache_bytes, kPerTop)                       \
  X(cache_admission_rejects, kPerTop)           \
  X(cache_sketch_bytes, kPerTop)

/// The second X-macro column as a real type, so aggregation code can
/// branch on it with `if constexpr (StatsAgg::agg == ...)` instead of
/// re-listing counter names (see FusionCluster::stats()).
enum class StatsAgg { kPerTop, kPerBackend };

/// Number of rows in FFSM_SERVICE_STATS_COUNTERS.
inline constexpr std::size_t kServiceStatsCounters = []() {
  std::size_t n = 0;
#define FFSM_STATS_COUNT(name, agg) ++n;
  FFSM_SERVICE_STATS_COUNTERS(FFSM_STATS_COUNT)
#undef FFSM_STATS_COUNT
  return n;
}();

/// Lifetime counters of one serving backend — a FusionService or the shard
/// worker wrapping one. The cache_* fields snapshot the persistent closure
/// cache; eviction misses are broken out from cold misses so a bounded
/// cache under pressure does not masquerade as a cold workload
/// (cache_hits + cache_cold_misses + cache_eviction_misses == lookups).
/// The field set is mirrored by FFSM_SERVICE_STATS_COUNTERS above, which
/// drives both codecs and the cluster aggregation.
struct ServiceStats {
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t batches_served = 0;
  /// Speculation counters summed over every request this service drained
  /// (see GenerateStats); all 0 when the engine runs serial or
  /// non-incremental.
  std::uint64_t speculative_covers_launched = 0;
  std::uint64_t speculation_hits = 0;
  std::uint64_t speculation_wasted_closures = 0;
  /// Worker restarts this serving state survived: respawned processes
  /// (SubprocessBackend), re-established connections (TcpBackend). Always
  /// 0 from the serving side itself — the backend that owns the restart
  /// policy fills it, since the restarted worker cannot count its own
  /// deaths.
  std::uint64_t restarts = 0;
  /// Times the serving endpoint moved to a different replica (failover on
  /// a dead primary, fail-back to a revived one). Filled parent-side by
  /// replica-set backends, 0 everywhere else — like restarts, the worker
  /// cannot observe its own replacement.
  std::uint64_t failovers = 0;
  /// Failed health probes across this backend's replica endpoints, from
  /// the HealthMonitor watching them; 0 without one.
  std::uint64_t health_probes_failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_cold_misses = 0;
  std::uint64_t cache_eviction_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  /// Inserts rejected by the TinyLFU admission filter (kLfuAdmit only).
  std::uint64_t cache_admission_rejects = 0;
  /// Bytes held by the admission frequency sketch (kLfuAdmit only).
  std::size_t cache_sketch_bytes = 0;
};

/// The FusionServiceOptions subset that can cross a process boundary
/// (ThreadPool pointers cannot): engine mode, cache bound, and the
/// worker-side parallelism switch.
struct ShardServiceConfig {
  /// Fan the worker's batches across its own pool.
  bool parallel = true;
  /// Worker pool size; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Per-request engine mode (see GenerateOptions::incremental).
  bool incremental = true;
  /// Bound + eviction policy for each worker service's closure cache.
  LowerCoverCacheConfig cache_config = {};
  /// Speculative prefetch depth per descent step (see
  /// SpeculationOptions::lookahead); used when parallel && incremental.
  std::uint32_t speculation_lookahead = 2;
};

/// A FusionRequest in its wire envelope: the backend ticket identifying
/// the eventual response, plus the submitting client.
struct WireRequest {
  std::uint64_t ticket = 0;
  std::string client;
  FusionRequest request;
};

// ----------------------------------------------------- free-function codec
//
// Every decode throws ContractViolation on malformed input (unknown
// directive, missing field, trailing garbage) — a truncated or corrupted
// frame must fail loudly at the boundary, never produce a half-read
// message.
//
// DEPRECATED: these free functions are thin wrappers over the *text*
// encoding and are kept so existing callers compile unchanged. New code
// should speak Frame through a WireCodec (below), which also supports the
// negotiated binary framing; these wrappers will be removed once
// out-of-tree callers have migrated.

[[nodiscard]] std::string encode_request(const WireRequest& request);
[[nodiscard]] WireRequest decode_request(std::string_view text);

[[nodiscard]] std::string encode_response(const FusionResponse& response);
[[nodiscard]] FusionResponse decode_response(std::string_view text);

[[nodiscard]] std::string encode_stats(const ServiceStats& stats);
[[nodiscard]] ServiceStats decode_stats(std::string_view text);

[[nodiscard]] std::string encode_config(const ShardServiceConfig& config);
[[nodiscard]] ShardServiceConfig decode_config(std::string_view text);

// ----------------------------------------------------------------- tokens

/// Percent-escapes a byte string into a whitespace-free token ('%', ASCII
/// whitespace and control bytes become %XX; the empty string becomes the
/// lone marker "%", which no escape of a non-empty string produces).
[[nodiscard]] std::string escape_token(std::string_view raw);

/// Inverse of escape_token; throws ContractViolation on malformed escapes.
[[nodiscard]] std::string unescape_token(std::string_view token);

/// Wire names of the enums (stable — they are protocol, not display).
[[nodiscard]] const char* policy_name(DescentPolicy policy);
[[nodiscard]] DescentPolicy policy_from_name(std::string_view name);
[[nodiscard]] const char* cache_policy_name(CacheEvictionPolicy policy);
[[nodiscard]] CacheEvictionPolicy cache_policy_from_name(
    std::string_view name);

// ------------------------------------------------------------- wire codec

/// Which encoding a peer speaks (or is willing to negotiate).
///   kAuto   — offer the binary framing, fall back to text when the peer
///             does not negotiate (old workers). The default everywhere.
///   kText   — speak the line-oriented text protocol, no hello at all;
///             byte-identical to the pre-negotiation wire.
///   kBinary — require the binary framing; a peer that cannot negotiate it
///             fails the connection instead of falling back.
enum class WireMode { kAuto, kText, kBinary };

[[nodiscard]] const char* wire_mode_name(WireMode mode);
/// Strict parse of "text" / "bin" / "auto" (the --wire flag values);
/// returns false on anything else, leaving `out` untouched.
[[nodiscard]] bool parse_wire_mode(std::string_view name, WireMode& out);

/// Everything that crosses a backend boundary, as a tagged variant. One
/// type for both directions: commands (kConfig, kTop, kServe + kRequest*,
/// kStatsQuery, kPing, kShutdown) and replies (kOk, kError, kServing +
/// kResponse* + kDone, kStats, kPong, kBye).
enum class FrameType : std::uint8_t {
  kOk = 1,
  kError = 2,       // text = human-readable detail
  kConfig = 3,      // config
  kTop = 4,         // key + text (self-contained machine text)
  kServe = 5,       // key + count + parent span id, then `count` kRequests
  kRequest = 6,     // request
  kServing = 7,     // count, followed by `count` kResponse frames + kDone
  kResponse = 8,    // response
  kDone = 9,
  kStatsQuery = 10,  // key
  kStats = 11,       // stats
  kPing = 12,
  kPong = 13,
  kShutdown = 14,
  kBye = 15,
  // key + count + entries. Dual-purpose (warm cache handoff): with
  // `entries` empty it queries the worker for its (up to) `count` hottest
  // cache entries — answered by a kCacheWarm carrying them; with `entries`
  // non-empty it imports them into the worker's cache — answered by kOk.
  kCacheWarm = 16,
  // obs (an obs::ObsSnapshot). Dual-purpose like kCacheWarm: an *empty*
  // snapshot queries the worker for its connection-local metrics + spans —
  // answered by a kObs carrying them; the parent merges the reply into the
  // cluster-wide view tagged with the shard it came from.
  kObs = 17,
};

[[nodiscard]] const char* frame_type_name(FrameType type);

/// One decoded wire frame. Which fields are meaningful depends on `type`
/// (see FrameType); the rest stay default-constructed. `exchange` is the
/// multiplexing tag of the binary framing — replies echo the exchange id
/// of their command, so several exchanges can interleave on one
/// connection. The text encoding cannot carry it (always 0).
struct Frame {
  FrameType type = FrameType::kOk;
  std::uint64_t exchange = 0;
  std::string key;           // kTop, kServe, kStatsQuery
  std::uint64_t count = 0;   // kServe, kServing
  // kServe: id of the parent-side span (cluster.serve_top) this batch is
  // served under, 0 = unlinked. The worker parents its gen.* spans on it,
  // so the merged trace nests worker work under the originating drain —
  // cross-process trace stitching (hello v5).
  std::uint64_t parent = 0;
  std::string text;          // kTop (machine text), kError (detail)
  WireRequest request;       // kRequest
  FusionResponse response;   // kResponse
  ServiceStats stats;        // kStats
  ShardServiceConfig config; // kConfig
  std::vector<WarmCacheEntry> entries;  // kCacheWarm
  obs::ObsSnapshot obs;      // kObs
};

/// Mark/restore bump allocator backing binary frame decode: the payload of
/// every incoming frame is staged in one arena block (no per-frame buffer
/// allocation in steady state — restore() keeps the memory) and parsed in
/// place. Chunked so a mark survives growth; an allocation larger than the
/// chunk size gets a dedicated chunk.
class WireArena {
 public:
  explicit WireArena(std::size_t chunk_size = 64 * 1024)
      : chunk_size_(chunk_size) {}

  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Mark mark() const noexcept { return {current_, used_}; }
  /// Rewinds to `mark`; memory is retained for reuse, never freed.
  void restore(const Mark& mark) noexcept {
    current_ = mark.chunk;
    used_ = mark.used;
  }
  [[nodiscard]] char* allocate(std::size_t bytes);
  /// Total bytes owned (capacity, not live) — observability for tests.
  [[nodiscard]] std::size_t capacity() const noexcept;

 private:
  std::size_t chunk_size_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::vector<std::size_t> sizes_;
  std::size_t current_ = 0;  // chunk cursor
  std::size_t used_ = 0;     // bytes used in chunks_[current_]
};

/// One wire encoding: how a Frame becomes bytes and back. Both directions
/// of every backend (QueuedWireBackend subclasses parent-side, the shard
/// worker on the other end) speak Frame through this interface and never
/// touch encoding details. Implementations may keep decode scratch state
/// (the binary codec's arena), so decode/read are non-const; one codec
/// instance must not be shared by concurrent readers.
class WireCodec {
 public:
  virtual ~WireCodec() = default;

  /// Stable wire name: "text" or "bin" (also the negotiation token).
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// Whether frames carry exchange ids (binary only) — the precondition
  /// for interleaving exchanges on one connection.
  [[nodiscard]] virtual bool multiplexed() const noexcept = 0;

  /// Appends `frame`'s wire bytes to `out`.
  virtual void encode(const Frame& frame, std::string& out) const = 0;
  [[nodiscard]] std::string encode(const Frame& frame) const {
    std::string out;
    encode(frame, out);
    return out;
  }

  /// Decodes exactly one frame from a complete buffer. Strict: truncated
  /// input and trailing bytes both throw ContractViolation, as does any
  /// malformed content. (The unit-testable surface; transport reads below
  /// share its parsing.)
  [[nodiscard]] virtual Frame decode(std::string_view bytes) = 0;

  /// Reads one frame off the channel, blocking as long as it takes (the
  /// parent side: serve replies legitimately take minutes, TCP keepalive
  /// bounds a dead peer). EOF — even mid-frame — and transport errors
  /// throw NetError; malformed content throws ContractViolation with the
  /// stream position unknowable.
  [[nodiscard]] virtual Frame expect(net::LineChannel& channel,
                                     const char* context) = 0;

  /// Reads one command frame (the worker side): returns std::nullopt on
  /// clean EOF before the frame begins; once it has begun, the rest must
  /// arrive within `frame_budget` or the read fails with NetError. A
  /// ContractViolation means the frame was malformed; for the text codec
  /// the line(s) were fully consumed and the stream is still in sync (the
  /// error-reply-and-continue path old workers rely on); for the binary
  /// codec the stream must be torn down.
  [[nodiscard]] virtual std::optional<Frame> read_command(
      net::LineChannel& channel, std::chrono::milliseconds frame_budget) = 0;
};

/// The codec for one negotiated wire: "bin" or "text".
[[nodiscard]] std::unique_ptr<WireCodec> make_wire_codec(bool binary);

// ------------------------------------------------------------ negotiation
//
// A parent that wants the binary wire opens every connection with a hello
// line — `hello <version> <offer>[,<offer>...]` — listing the encodings
// it accepts, best first. A negotiating worker answers
// `hello <version> <choice>` and both sides switch; a worker that
// predates negotiation (or runs --wire=text) answers
// `error unknown%20command...` like for any unknown directive and keeps
// listening, so the parent falls back to text with the stream still in
// sync. No hello means text, byte-identical to the old wire.
//
// The version is a single integer both sides must match exactly; it is
// bumped whenever a negotiated payload changes shape in either encoding
// (current: 5 — see kHelloVersion in messages.cpp for the history). A
// worker seeing an unsupported version answers
// `error unsupported%20hello%20version...`; the parent recognizes that
// reply and fails the connection in every mode — no text fallback, since
// the text payloads differ across versions too.

/// The parent's opening line (trailing '\n' included). kText sends no
/// hello — calling this with kText is a contract violation.
[[nodiscard]] std::string client_hello(WireMode mode);

/// Parses a worker-received `hello` line. Returns false when `line` is
/// not a hello at all; throws ContractViolation on a hello with an
/// unsupported version. Unknown offer tokens are ignored (future codecs
/// degrade gracefully).
[[nodiscard]] bool parse_client_hello(std::string_view line,
                                      bool& offers_binary, bool& offers_text);

/// The worker's answer line for `binary` (trailing '\n' included).
[[nodiscard]] std::string worker_hello(bool binary);

/// Client-side negotiation on a fresh connection: sends the hello for
/// `mode` (none for kText), reads the worker's answer, and returns the
/// agreed codec. An `error` answer mentioning the hello means a version
/// mismatch and throws in every mode; any other `error` means a
/// non-negotiating worker: kAuto falls back to text, kBinary throws
/// ContractViolation. Any other answer is a protocol violation (throws;
/// the caller drops the connection).
[[nodiscard]] std::unique_ptr<WireCodec> negotiate_wire(
    net::LineChannel& channel, WireMode mode);

}  // namespace ffsm
