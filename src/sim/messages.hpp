// Wire protocol of the serving stack.
//
// A shard of the FusionCluster is a backend behind a message boundary (see
// sim/backend.hpp); this header defines the messages that cross it and
// their exact round-tripping text codec. Frames are line-oriented in the
// fsm/serialize style — a directive line opens the frame, key/value lines
// follow, and a lone `end` line closes it — so machines (to_text, which is
// self-contained via its alphabet header), requests, responses, stats and
// configs all travel the same way over any byte stream.
//
//   request <ticket> <client>             response <ticket> <client>
//   f <f>                                 fusion <b0> <b1> ...   (per machine)
//   policy <fewest_blocks|...>            stats <8 counters, fixed order>
//   original <b0> <b1> ...  (per orig)    end
//   end
//
//   stats                                 config
//   requests_submitted <n>                parallel <0|1>
//   ... (one counter per line)            threads <n>
//   end                                   incremental <0|1>
//                                         cache_policy <lru|epoch|unbounded>
//                                         cache_capacity <n>
//                                         end
//
// Tokens that may contain arbitrary bytes (client names, top keys) are
// percent-escaped (escape_token); partitions travel as their normalized
// block assignments, so decode(encode(x)) == x and, for canonical frames,
// encode(decode(text)) == text byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fusion/generator.hpp"

namespace ffsm {

/// One served request crossing a backend boundary. FusionService::Response
/// is an alias of this — the in-process and wire representations are the
/// same type.
struct FusionResponse {
  std::uint64_t ticket = 0;
  std::string client;
  FusionResult result;
};

/// Lifetime counters of one serving backend — a FusionService or the shard
/// worker wrapping one. The cache_* fields snapshot the persistent closure
/// cache; eviction misses are broken out from cold misses so a bounded
/// cache under pressure does not masquerade as a cold workload
/// (cache_hits + cache_cold_misses + cache_eviction_misses == lookups).
struct ServiceStats {
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t batches_served = 0;
  /// Worker restarts this serving state survived: respawned processes
  /// (SubprocessBackend), re-established connections (TcpBackend). Always
  /// 0 from the serving side itself — the backend that owns the restart
  /// policy fills it, since the restarted worker cannot count its own
  /// deaths.
  std::uint64_t restarts = 0;
  /// Times the serving endpoint moved to a different replica (failover on
  /// a dead primary, fail-back to a revived one). Filled parent-side by
  /// replica-set backends, 0 everywhere else — like restarts, the worker
  /// cannot observe its own replacement.
  std::uint64_t failovers = 0;
  /// Failed health probes across this backend's replica endpoints, from
  /// the HealthMonitor watching them; 0 without one.
  std::uint64_t health_probes_failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_cold_misses = 0;
  std::uint64_t cache_eviction_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
};

/// The FusionServiceOptions subset that can cross a process boundary
/// (ThreadPool pointers cannot): engine mode, cache bound, and the
/// worker-side parallelism switch.
struct ShardServiceConfig {
  /// Fan the worker's batches across its own pool.
  bool parallel = true;
  /// Worker pool size; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Per-request engine mode (see GenerateOptions::incremental).
  bool incremental = true;
  /// Bound + eviction policy for each worker service's closure cache.
  LowerCoverCacheConfig cache_config = {};
};

/// A FusionRequest in its wire envelope: the backend ticket identifying
/// the eventual response, plus the submitting client.
struct WireRequest {
  std::uint64_t ticket = 0;
  std::string client;
  FusionRequest request;
};

// ------------------------------------------------------------------ codec
//
// Every decode throws ContractViolation on malformed input (unknown
// directive, missing field, trailing garbage) — a truncated or corrupted
// frame must fail loudly at the boundary, never produce a half-read
// message.

[[nodiscard]] std::string encode_request(const WireRequest& request);
[[nodiscard]] WireRequest decode_request(std::string_view text);

[[nodiscard]] std::string encode_response(const FusionResponse& response);
[[nodiscard]] FusionResponse decode_response(std::string_view text);

[[nodiscard]] std::string encode_stats(const ServiceStats& stats);
[[nodiscard]] ServiceStats decode_stats(std::string_view text);

[[nodiscard]] std::string encode_config(const ShardServiceConfig& config);
[[nodiscard]] ShardServiceConfig decode_config(std::string_view text);

// ----------------------------------------------------------------- tokens

/// Percent-escapes a byte string into a whitespace-free token ('%', ASCII
/// whitespace and control bytes become %XX; the empty string becomes the
/// lone marker "%", which no escape of a non-empty string produces).
[[nodiscard]] std::string escape_token(std::string_view raw);

/// Inverse of escape_token; throws ContractViolation on malformed escapes.
[[nodiscard]] std::string unescape_token(std::string_view token);

/// Wire names of the enums (stable — they are protocol, not display).
[[nodiscard]] const char* policy_name(DescentPolicy policy);
[[nodiscard]] DescentPolicy policy_from_name(std::string_view name);
[[nodiscard]] const char* cache_policy_name(CacheEvictionPolicy policy);
[[nodiscard]] CacheEvictionPolicy cache_policy_from_name(
    std::string_view name);

}  // namespace ffsm
