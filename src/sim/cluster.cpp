#include "sim/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "util/contracts.hpp"
#include "util/hash.hpp"

namespace ffsm {

FusionCluster::FusionCluster(FusionClusterOptions options)
    : options_(std::move(options)),
      shards_(options_.shards),
      windows_(options_.telemetry_windows) {
  FFSM_EXPECTS(options_.shards >= 1);
  if (options_.obs != nullptr) {
    obs_ = options_.obs;
  } else {
    owned_obs_ = std::make_unique<obs::Obs>();
    obs_ = owned_obs_.get();
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (options_.backend_factory) {
      shards_[s].backend = options_.backend_factory(s);
      FFSM_EXPECTS(shards_[s].backend != nullptr);
    } else {
      FusionServiceOptions service_options;
      service_options.parallel = options_.parallel;
      service_options.pool = options_.pool;
      service_options.incremental = options_.incremental;
      service_options.cache_config = options_.cache_config;
      service_options.speculation_lookahead = options_.speculation_lookahead;
      // In-process shards record straight into the cluster's own context
      // (which is why ShardBackend::obs_snapshot's empty default is right
      // for them — nothing to merge twice).
      service_options.obs = obs_;
      shards_[s].backend = std::make_unique<InProcessBackend>(service_options);
    }
  }
  if (options_.telemetry_poll_us != 0)
    poller_ = std::thread([this] { poller_loop(); });
}

FusionCluster::~FusionCluster() { stop_poller(); }

std::size_t FusionCluster::shard_of(const std::string& key) const noexcept {
  // Byte hash, not std::hash: shard assignment must be stable across runs
  // and platforms so clients, logs and tests can all predict where a top
  // lives.
  return fnv1a_bytes(key) % shards_.size();
}

void FusionCluster::add_top(const std::string& key, Dfsm top) {
  Shard& shard = shards_[shard_of(key)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.tops.try_emplace(key);
  FFSM_EXPECTS(inserted);  // keys are unique across the cluster
  // Registration order: cluster bookkeeping first, then the backend, so a
  // backend that throws (e.g. worker spawn failure) leaves no half-entry —
  // roll the map entry back on failure.
  try {
    shard.backend->add_top(key, top);
  } catch (...) {
    shard.tops.erase(it);
    throw;
  }
}

bool FusionCluster::has_top(const std::string& key) const {
  const Shard& shard = shards_[shard_of(key)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.tops.contains(key);
}

std::size_t FusionCluster::top_count() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    count += shard.tops.size();
  }
  return count;
}

const ShardBackend& FusionCluster::backend(const std::string& key) const {
  const Shard& shard = shards_[shard_of(key)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  FFSM_EXPECTS(shard.tops.contains(key));
  return *shard.backend;  // backends live as long as the cluster
}

const FusionService& FusionCluster::service(const std::string& key) const {
  const auto* in_process =
      dynamic_cast<const InProcessBackend*>(&backend(key));
  FFSM_EXPECTS(in_process != nullptr);  // in-process backends only
  return in_process->service(key);
}

ServiceStats FusionCluster::top_stats(const std::string& key) const {
  return backend(key).stats(key);
}

std::uint64_t FusionCluster::submit(const std::string& top_key,
                                    std::string client,
                                    FusionRequest request) {
  Shard& shard = shards_[shard_of(top_key)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  FFSM_EXPECTS(shard.tops.contains(top_key));
  const std::uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  shard.queue.push_back({ticket, top_key, std::move(client),
                         std::move(request),
                         obs_->enabled() ? obs_->now_us() : 0});
  requests_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs_->enabled()) {
    // Levels, not counts: moved back down as responses are delivered (or
    // the backlog is discarded), so a scrape sees the live backlog.
    obs_->gauge_add("cluster.queue_depth", 1);
    obs_->gauge_add("cluster.pending." + top_key, 1);
  }
  return ticket;
}

std::size_t FusionCluster::pending() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    std::vector<std::string> keys;
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      count += shard.queue.size();
      keys.reserve(shard.tops.size());
      for (const auto& [key, entry] : shard.tops) keys.push_back(key);
    }
    // Backend pending() synchronizes internally; don't hold the shard's
    // topology lock across it.
    for (const std::string& key : keys) count += shard.backend->pending(key);
  }
  return count;
}

void FusionCluster::serve_shard(Shard& shard, std::uint64_t parent_span,
                                std::vector<Response>& responses,
                                std::uint64_t& requeued,
                                std::vector<std::string>& failed_tops) {
  std::vector<Item> items;
  // Snapshot the backlog and the topology. Entry pointers stay valid
  // outside the lock: unordered_map references are rehash-stable and tops
  // are never removed. Every queued item's top was registered before its
  // submit, so it is in this snapshot.
  std::vector<std::pair<const std::string*, TopEntry*>> entries;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    items.swap(shard.queue);
    entries.reserve(shard.tops.size());
    for (auto& [key, entry] : shard.tops) entries.emplace_back(&key, &entry);
  }
  ShardBackend& backend = *shard.backend;

  const auto record_failure = [&](const std::string& top) {
    if (std::find(failed_tops.begin(), failed_tops.end(), top) ==
        failed_tops.end())
      failed_tops.push_back(top);
    drain_failures_.fetch_add(1, std::memory_order_relaxed);
  };

  // Feed the backlog into the backend's per-top queues. This is where
  // request contents are validated (ShardBackend::validate checks
  // partition sizes against the top); a rejected request goes back to the
  // cluster queue. One clock read covers the whole feed loop — items
  // snapshotted above were all enqueued before this point, so the delta
  // never goes negative.
  const bool timed = obs_->enabled();
  const std::uint64_t feed_now = timed ? obs_->now_us() : 0;
  std::vector<Item> rejected;
  for (Item& item : items) {
    TopEntry* entry = nullptr;
    for (const auto& [key, candidate] : entries)
      if (*key == item.top) {
        entry = candidate;
        break;
      }
    FFSM_ASSERT(entry != nullptr);
    // Validate before moving the request into the backend: submit takes
    // its arguments by value, so a throw after the move would leave only
    // a moved-from husk to re-queue. The catch covers ONLY validation —
    // past it, submit can fail on allocation alone, and that propagates
    // as a drain error (via the caller's exception capture) rather than
    // re-queueing an empty request as if it were intact.
    try {
      backend.validate(item.top, item.request);
    } catch (...) {
      record_failure(item.top);
      rejected.push_back(std::move(item));
      continue;
    }
    if (timed && item.enqueued_us != 0)
      obs_->record("cluster.queue_wait", feed_now - item.enqueued_us);
    const std::uint64_t backend_ticket =
        backend.submit(item.top, item.client, std::move(item.request));
    entry->inflight.emplace(backend_ticket, item.ticket);
  }

  // Drain every top with a backlog — new submissions plus anything a
  // previously failed drain left queued inside the backend. The drains run
  // in parallel: backends either serialize internally (subprocess) or
  // multiplex concurrent serve exchanges on one connection (the replica
  // backend's tagged binary wire), so distinct tops genuinely overlap.
  // Results land in per-top slots and merge in registration order below —
  // bookkeeping (inflight maps, failure records) stays single-threaded.
  std::vector<std::pair<const std::string*, TopEntry*>> backlogged;
  for (const auto& [key, entry] : entries)
    if (backend.pending(*key) != 0) backlogged.emplace_back(key, entry);
  const std::size_t backlogged_count = backlogged.size();
  std::vector<std::vector<FusionResponse>> served_per_top(backlogged_count);
  std::vector<std::exception_ptr> drain_errors(backlogged_count);
  const auto drain_top = [&](std::size_t i) {
    // The capture covers only drain() itself so a served batch can never
    // be misreported as re-queued — response mapping in the merge happens
    // outside it (a mapping failure, e.g. OOM, propagates to drain()'s
    // caller as an error instead).
    try {
      const obs::ScopedSpan span(obs_, "cluster.serve_top",
                                 {.top = *backlogged[i].first,
                                  .parent = parent_span});
      served_per_top[i] = backend.drain(*backlogged[i].first);
    } catch (...) {
      drain_errors[i] = std::current_exception();
    }
  };
  if (options_.parallel) {
    ParallelOptions popt;
    popt.pool = options_.pool;
    popt.serial_threshold = 2;  // a whole wire exchange per iteration
    parallel_for(0, backlogged_count, drain_top, popt);
  } else {
    for (std::size_t i = 0; i < backlogged_count; ++i) drain_top(i);
  }

  for (std::size_t i = 0; i < backlogged_count; ++i) {
    const std::string& key = *backlogged[i].first;
    TopEntry* entry = backlogged[i].second;
    if (drain_errors[i]) {
      // The backend kept the batch queued internally; retried on the next
      // cluster drain (a subprocess backend respawns its worker then).
      record_failure(key);
      requeued += entry->inflight.size();
      continue;
    }
    std::vector<FusionResponse>& served = served_per_top[i];
    responses.reserve(responses.size() + served.size());
    std::int64_t delivered = 0;
    for (FusionResponse& r : served) {
      const auto it = entry->inflight.find(r.ticket);
      // Ticket 0 marks a request submitted to the backend directly,
      // bypassing the cluster; results are still delivered.
      std::uint64_t cluster_ticket = 0;
      if (it != entry->inflight.end()) {
        cluster_ticket = it->second;
        entry->inflight.erase(it);
        ++delivered;  // Only cluster-submitted requests moved the gauges.
      }
      responses.push_back({cluster_ticket, key, std::move(r.client),
                           std::move(r.result)});
    }
    if (timed && delivered != 0) {
      obs_->gauge_add("cluster.queue_depth", -delivered);
      obs_->gauge_add("cluster.pending." + key, -delivered);
    }
  }

  if (!rejected.empty()) {
    requeued += rejected.size();
    const std::lock_guard<std::mutex> lock(shard.mutex);
    // Ahead of anything submitted meanwhile, preserving ticket order.
    shard.queue.insert(shard.queue.begin(),
                       std::make_move_iterator(rejected.begin()),
                       std::make_move_iterator(rejected.end()));
  }
}

FusionCluster::DrainReport FusionCluster::drain() {
  const std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  drains_.fetch_add(1, std::memory_order_relaxed);
  // One span per drain round; serve_top and merge spans parent under it,
  // and its duration feeds the cluster.drain histogram.
  const obs::ScopedSpan drain_span(obs_, "cluster.drain");

  const std::size_t n = shards_.size();
  std::vector<std::vector<Response>> responses(n);
  std::vector<std::uint64_t> requeued(n, 0);
  std::vector<std::vector<std::string>> failed(n);

  // Exceptions must not escape a pool worker (ThreadPool terminates on
  // escape); serve_shard captures per-top failures itself, this guards the
  // plumbing around it.
  std::vector<std::exception_ptr> errors(n);
  const auto serve = [&](std::size_t s) {
    try {
      serve_shard(shards_[s], drain_span.id(), responses[s], requeued[s],
                  failed[s]);
    } catch (...) {
      errors[s] = std::current_exception();
    }
  };
  if (options_.parallel) {
    ParallelOptions popt;
    popt.pool = options_.pool;
    popt.serial_threshold = 2;  // shards are coarse-grained
    parallel_for(0, n, serve, popt);
  } else {
    for (std::size_t s = 0; s < n; ++s) serve(s);
  }
  for (const std::exception_ptr& error : errors)
    if (error) std::rethrow_exception(error);

  DrainReport report;
  {
    const obs::ScopedSpan merge_span(obs_, "cluster.merge",
                                     {.parent = drain_span.id()});
    for (std::size_t s = 0; s < n; ++s) {
      report.responses.insert(report.responses.end(),
                              std::make_move_iterator(responses[s].begin()),
                              std::make_move_iterator(responses[s].end()));
      report.requeued += requeued[s];
      report.failed_tops.insert(report.failed_tops.end(), failed[s].begin(),
                                failed[s].end());
    }
    std::sort(report.responses.begin(), report.responses.end(),
              [](const Response& a, const Response& b) {
                return a.ticket < b.ticket;
              });
    std::sort(report.failed_tops.begin(), report.failed_tops.end());
    report.failed_tops.erase(
        std::unique(report.failed_tops.begin(), report.failed_tops.end()),
        report.failed_tops.end());
  }

  requests_served_.fetch_add(report.responses.size(),
                             std::memory_order_relaxed);
  requests_requeued_.fetch_add(report.requeued, std::memory_order_relaxed);
  return report;
}

std::size_t FusionCluster::discard_pending(const std::string& top_key) {
  // Serialized with drain() so the inflight bookkeeping can be reset
  // consistently with the backend queue it mirrors.
  const std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  Shard& shard = shards_[shard_of(top_key)];
  std::size_t count = 0;
  // Gauge-tracked discards: every cluster-submitted request moved the
  // gauges up once, so cluster-queue removals plus inflight entries move
  // them back down (the backend's count can include direct submissions,
  // which never touched the gauges).
  std::size_t tracked = 0;
  TopEntry* entry = nullptr;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto removed = std::remove_if(
        shard.queue.begin(), shard.queue.end(),
        [&](const Item& item) { return item.top == top_key; });
    count += static_cast<std::size_t>(shard.queue.end() - removed);
    shard.queue.erase(removed, shard.queue.end());
    tracked = count;
    const auto it = shard.tops.find(top_key);
    if (it != shard.tops.end()) entry = &it->second;
  }
  if (entry != nullptr) {
    // The other half of a poisoned backlog: requests a failed drain left
    // queued inside the backend. Outside a drain, inflight mirrors
    // exactly those, so both reset together.
    count += shard.backend->discard_pending(top_key);
    tracked += entry->inflight.size();
    entry->inflight.clear();
  }
  if (obs_->enabled() && tracked != 0) {
    obs_->gauge_add("cluster.queue_depth",
                    -static_cast<std::int64_t>(tracked));
    obs_->gauge_add("cluster.pending." + top_key,
                    -static_cast<std::int64_t>(tracked));
  }
  return count;
}

void FusionCluster::shutdown() {
  // Poller first: a poll racing backend shutdown would observe (or worse,
  // respawn) half-terminated workers.
  stop_poller();
  const std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  for (Shard& shard : shards_) shard.backend->shutdown();
}

FusionCluster::Stats FusionCluster::stats() const {
  Stats out;
  out.requests_submitted =
      requests_submitted_.load(std::memory_order_relaxed);
  out.requests_served = requests_served_.load(std::memory_order_relaxed);
  out.requests_requeued =
      requests_requeued_.load(std::memory_order_relaxed);
  out.drains = drains_.load(std::memory_order_relaxed);
  out.drain_failures = drain_failures_.load(std::memory_order_relaxed);
  out.shards = shards_.size();
  out.pending = pending();
  for (const Shard& shard : shards_) {
    std::vector<std::string> keys;
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      out.tops += shard.tops.size();
      keys.reserve(shard.tops.size());
      for (const auto& [key, entry] : shard.tops) keys.push_back(key);
    }
    // Fold every top's counters into one per-shard ServiceStats by the
    // aggregation rule declared next to each counter in the X-macro table
    // (sim/messages.hpp). kPerBackend counters repeat on every top of the
    // shard — the shared worker's restarts/failovers/probe failures — so
    // they fold by max, not sum; everything else accumulates. A counter
    // added to the table aggregates correctly here with no further code.
    ServiceStats totals;
    for (const std::string& key : keys) {
      const ServiceStats s = shard.backend->stats(key);
#define FFSM_FOLD_COUNTER(name, agg)                    \
  if constexpr (StatsAgg::agg == StatsAgg::kPerBackend) \
    totals.name = std::max(totals.name, s.name);        \
  else                                                  \
    totals.name += s.name;
      FFSM_SERVICE_STATS_COUNTERS(FFSM_FOLD_COUNTER)
#undef FFSM_FOLD_COUNTER
    }
    // Map the shard totals onto the cluster view. requests_submitted /
    // requests_served stay with the cluster's own atomics above (the
    // backend's copies count direct submissions too).
    out.shard_batches_served += totals.batches_served;
    out.speculative_covers_launched += totals.speculative_covers_launched;
    out.speculation_hits += totals.speculation_hits;
    out.speculation_wasted_closures += totals.speculation_wasted_closures;
    out.restarts += totals.restarts;
    out.failovers += totals.failovers;
    out.health_probes_failed += totals.health_probes_failed;
    out.cache_hits += totals.cache_hits;
    out.cache_cold_misses += totals.cache_cold_misses;
    out.cache_eviction_misses += totals.cache_eviction_misses;
    out.cache_evictions += totals.cache_evictions;
    out.cache_entries += totals.cache_entries;
    out.cache_bytes += totals.cache_bytes;
    out.cache_admission_rejects += totals.cache_admission_rejects;
    out.cache_sketch_bytes += totals.cache_sketch_bytes;
  }
  return out;
}

obs::ObsSnapshot FusionCluster::obs_snapshot() {
  obs::ObsSnapshot out = obs_->snapshot();
  // Each wire backend answers a kObs query (SubprocessBackend over its
  // stdio channel, ReplicaBackend over the current replica connection);
  // in-process backends already recorded into obs_ and return {}. Merge
  // tags the remote spans with their shard so the Chrome export lays each
  // worker out on its own process track.
  for (std::size_t s = 0; s < shards_.size(); ++s)
    out.merge(shards_[s].backend->obs_snapshot(),
              "shard" + std::to_string(s));
  return out;
}

void FusionCluster::poll_telemetry() {
  // Same constituents as obs_snapshot(), ingested per source so each
  // one's diff baseline is independent — a respawned worker's counter
  // reset clamps on its own series without disturbing the others.
  const std::uint64_t now = obs_->now_us();
  // Metrics only: the windowed view never carries spans (diff drops
  // them), so don't pay for copying the trace ring on every poll.
  obs::ObsSnapshot parent;
  obs_->metrics().snapshot(&parent.counters, &parent.histograms,
                           &parent.gauges);
  windows_.ingest("parent", parent, now);
  for (std::size_t s = 0; s < shards_.size(); ++s)
    windows_.ingest("shard" + std::to_string(s),
                    shards_[s].backend->obs_snapshot(), now);
}

obs::WindowedObs FusionCluster::obs_windows() const { return windows_; }

void FusionCluster::poller_loop() {
  std::unique_lock<std::mutex> lock(poller_mutex_);
  while (!poller_stop_) {
    poller_cv_.wait_for(lock,
                        std::chrono::microseconds(options_.telemetry_poll_us),
                        [this] { return poller_stop_; });
    if (poller_stop_) return;
    // Poll outside the lock: a poll does a wire exchange per remote shard
    // and can take a while; a stop request only needs to win the next
    // wait, not interrupt a poll in flight.
    lock.unlock();
    poll_telemetry();
    lock.lock();
  }
}

void FusionCluster::stop_poller() {
  {
    const std::lock_guard<std::mutex> lock(poller_mutex_);
    poller_stop_ = true;
  }
  poller_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
}

}  // namespace ffsm
