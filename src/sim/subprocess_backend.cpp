#include "sim/subprocess_backend.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <utility>

#include "obs/obs.hpp"
#include "util/contracts.hpp"

namespace ffsm {
namespace {

Frame command_frame(FrameType type) {
  Frame frame;
  frame.type = type;
  return frame;
}

}  // namespace

std::string discover_worker_path(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  if (const char* env = std::getenv("FFSM_SHARD_WORKER");
      env != nullptr && *env != '\0')
    return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string path(buf);
    if (const auto slash = path.rfind('/'); slash != std::string::npos) {
      path.erase(slash + 1);
      return path + "ffsm_shard_worker";
    }
  }
  return "ffsm_shard_worker";  // last resort: $PATH lookup via execlp
}

SubprocessBackend::SubprocessBackend(SubprocessBackendOptions options)
    : options_(std::move(options)) {}

SubprocessBackend::~SubprocessBackend() { shutdown(); }

void SubprocessBackend::die_locked(const std::string& what) {
  kill_worker_locked();
  throw ContractViolation("SubprocessBackend: " + what);
}

void SubprocessBackend::kill_worker_locked() noexcept {
  channel_.close();
  codec_.reset();
  if (worker_pid_ > 0) {
    ::kill(worker_pid_, SIGKILL);
    ::waitpid(worker_pid_, nullptr, 0);
    worker_pid_ = 0;
  }
}

void SubprocessBackend::send_locked(std::string_view data) {
  // net::LineChannel::send is the full-buffer SIGPIPE-safe loop; a dead
  // worker surfaces as NetError, which this backend turns into its usual
  // reap-and-throw.
  try {
    channel_.send(data);
  } catch (const net::NetError&) {
    die_locked("write to worker failed (worker died?)");
  }
}

Frame SubprocessBackend::expect_frame_locked(const char* context) {
  try {
    return codec_->expect(channel_, context);
  } catch (const net::NetError&) {
    die_locked(std::string("worker closed the channel during ") + context);
  }
  // A malformed frame (plain ContractViolation) propagates to the caller,
  // which reaps — distinct from EOF so the error message says what broke.
}

void SubprocessBackend::register_top_locked(const std::string& key,
                                            const TopState& top) {
  Frame frame = command_frame(FrameType::kTop);
  frame.key = key;
  frame.text = top.machine_text;
  send_locked(codec_->encode(frame));
  const Frame reply = expect_frame_locked("top registration");
  if (reply.type != FrameType::kOk)
    die_locked("worker rejected top '" + key +
               "': " + describe_reply(reply));
}

void SubprocessBackend::replay_warm_locked(const std::string& key,
                                           const TopState& top) {
  if (top.warm.empty()) return;
  Frame frame = command_frame(FrameType::kCacheWarm);
  frame.key = key;
  frame.count = top.warm.size();
  frame.entries = top.warm;
  send_locked(codec_->encode(frame));
  const Frame reply = expect_frame_locked("warm cache replay");
  if (reply.type != FrameType::kOk)
    die_locked("worker rejected warm cache for '" + key +
               "': " + describe_reply(reply));
}

void SubprocessBackend::ensure_worker_locked() {
  if (channel_.valid() && worker_pid_ > 0) {
    const pid_t status = ::waitpid(worker_pid_, nullptr, WNOHANG);
    if (status == 0) return;  // worker is running
    // Exited (reaped just now) or already gone: forget the pid BEFORE the
    // cleanup below — SIGKILLing a reaped pid could hit whatever process
    // the kernel recycled it to.
    worker_pid_ = 0;
  }
  kill_worker_locked();  // close a stale channel, if any

  const std::string path = discover_worker_path(options_.worker_path);
  int sv[2];
  // SOCK_CLOEXEC: shards spawn workers concurrently during a parallel
  // drain, and a sibling fork between our socketpair() and exec would
  // otherwise inherit a copy of sv[1] — keeping this channel open after
  // our worker dies and so masking its EOF forever. dup2 below clears
  // CLOEXEC on the child's own stdin/stdout copies.
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
    throw ContractViolation("SubprocessBackend: socketpair failed");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw ContractViolation("SubprocessBackend: fork failed");
  }
  if (pid == 0) {
    // Child: bridge the channel to stdin/stdout and become the worker.
    ::dup2(sv[1], STDIN_FILENO);
    ::dup2(sv[1], STDOUT_FILENO);
    ::close(sv[0]);
    ::close(sv[1]);
    ::execlp(path.c_str(), "ffsm_shard_worker", static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed; the parent sees EOF on its first read
  }
  ::close(sv[1]);
  channel_ = net::LineChannel(net::Socket(sv[0]));
  worker_pid_ = static_cast<int>(pid);
  ++spawns_;
  // The first spawn is cold start, not a fault; every further one replaced
  // a dead worker.
  if (options_.obs != nullptr && spawns_ > 1)
    options_.obs->instant("worker.respawn");

  // Negotiate the encoding, then handshake: configure and re-register
  // every top in registration order (so a respawned worker rebuilds the
  // exact same services).
  try {
    codec_ = negotiate_wire(channel_, options_.wire);
  } catch (const net::NetError&) {
    die_locked("worker closed the channel during negotiation (is '" + path +
               "' an ffsm_shard_worker?)");
  } catch (const ContractViolation&) {
    // The worker answered, but not with a wire we accept (e.g. --wire=bin
    // against an old binary): reap it and let the mismatch propagate.
    kill_worker_locked();
    throw;
  }
  Frame config = command_frame(FrameType::kConfig);
  config.config = options_.config;
  send_locked(codec_->encode(config));
  const Frame reply = expect_frame_locked("config");
  if (reply.type != FrameType::kOk)
    die_locked("worker rejected config (is '" + path +
               "' an ffsm_shard_worker?): " + describe_reply(reply));
  for (const std::string& key : top_order_)
    register_top_locked(key, tops_.at(key));
  // Warm handoff: replay the last pre-death cache snapshots so the fresh
  // worker serves its first drain with the predecessor's hot set resident
  // instead of recomputing every shared descent prefix from scratch.
  for (const std::string& key : top_order_)
    replay_warm_locked(key, tops_.at(key));
}

void SubprocessBackend::register_added_top_locked(const std::string& key) {
  if (channel_.valid()) register_top_locked(key, tops_.at(key));
}

std::vector<FusionResponse> SubprocessBackend::drain(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TopState& top = top_of(key);
  if (top.queue.empty()) return {};
  ensure_worker_locked();

  // The whole batch as one buffer, one write: serve command + requests.
  std::string msg;
  Frame serve = command_frame(FrameType::kServe);
  serve.key = key;
  serve.count = top.queue.size();
  // Trace stitching: ship the innermost parent-side span id (the
  // cluster.serve_top wrapping this drain) so the worker's gen.* spans
  // come back parent-linked under it.
  serve.parent = obs::current_span_id();
  codec_->encode(serve, msg);
  for (const WireRequest& request : top.queue) {
    Frame frame = command_frame(FrameType::kRequest);
    frame.request = request;
    codec_->encode(frame, msg);
  }
  send_locked(msg);

  const Frame header = expect_frame_locked("serve");
  if (header.type == FrameType::kError) {
    // The worker is alive and in sync — the batch itself failed (the
    // analogue of generate_fusion_batch throwing in-process). Requests
    // stay queued for the cluster's retry path.
    throw ContractViolation("SubprocessBackend: worker failed to serve '" +
                            key + "': " + header.text);
  }
  if (header.type != FrameType::kServing || header.count != top.queue.size())
    die_locked("unexpected serve reply '" +
               std::string(frame_type_name(header.type)) + "'");

  std::vector<FusionResponse> responses;
  responses.reserve(header.count);
  try {
    for (std::uint64_t i = 0; i < header.count; ++i) {
      Frame reply = expect_frame_locked("response");
      if (reply.type != FrameType::kResponse)
        throw ContractViolation("expected response frame, got '" +
                                std::string(frame_type_name(reply.type)) +
                                "'");
      responses.push_back(std::move(reply.response));
    }
    const Frame done = expect_frame_locked("serve trailer");
    if (done.type != FrameType::kDone)
      die_locked("expected 'done', got '" +
                 std::string(frame_type_name(done.type)) + "'");
  } catch (const ContractViolation&) {
    // Either the channel died (already reaped by die_locked) or a frame
    // failed to decode — in both cases the stream is unusable; make the
    // restart explicit and keep the batch queued.
    kill_worker_locked();
    throw;
  }
  top.queue.clear();
  // Best-effort warm snapshot for the next respawn handshake, captured
  // while the worker's cache reflects the batch just served. The
  // responses are already in hand, so a failure here must not fail the
  // drain — it only costs the snapshot (die_locked already reaped a dead
  // worker; the next drain respawns).
  try {
    Frame query = command_frame(FrameType::kCacheWarm);
    query.key = key;
    query.count = kWarmSnapshotEntries;
    send_locked(codec_->encode(query));
    Frame snapshot = expect_frame_locked("warm cache snapshot");
    if (snapshot.type == FrameType::kCacheWarm)
      top.warm = std::move(snapshot.entries);
    else if (snapshot.type != FrameType::kError)
      kill_worker_locked();  // stream out of sync; respawn next drain
  } catch (const ContractViolation&) {
  }
  return responses;
}

ServiceStats SubprocessBackend::stats(const std::string& key) const {
  auto* self = const_cast<SubprocessBackend*>(this);
  const std::lock_guard<std::mutex> lock(mutex_);
  (void)top_of(key);  // key must be registered
  // Parent-side restart counter: worker counters restart with the worker
  // (like any real process-level metric), respawns are what this backend
  // survived — so `restarts` lives here, uniformly with TcpBackend.
  ServiceStats cold;
  cold.restarts = spawns_ > 0 ? spawns_ - 1 : 0;
  // No worker => nothing has served: all-zero counters, like a cold
  // service.
  if (!channel_.valid()) return cold;
  try {
    Frame query = command_frame(FrameType::kStatsQuery);
    query.key = key;
    self->send_locked(self->codec_->encode(query));
    const Frame reply = self->expect_frame_locked("stats");
    if (reply.type != FrameType::kStats) return cold;
    ServiceStats remote = reply.stats;
    remote.restarts = cold.restarts;
    return remote;
  } catch (const ContractViolation&) {
    // Channel died mid-query; the next drain respawns. Report cold.
    return cold;
  }
}

obs::ObsSnapshot SubprocessBackend::obs_snapshot() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // No worker => nothing observed this incarnation; the parent-side view
  // (queueing, wire timing) lives in the cluster's own Obs already.
  if (!channel_.valid()) return {};
  try {
    // An empty kObs frame is the query form; the worker replies with a
    // kObs frame carrying its snapshot (mirrors the kCacheWarm query).
    send_locked(codec_->encode(command_frame(FrameType::kObs)));
    Frame reply = expect_frame_locked("obs");
    if (reply.type != FrameType::kObs) return {};
    return std::move(reply.obs);
  } catch (const ContractViolation&) {
    // Channel died mid-query; the next drain respawns. Report empty.
    return {};
  }
}

void SubprocessBackend::shutdown() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (channel_.valid()) {
    try {
      if (codec_)
        channel_.send(codec_->encode(command_frame(FrameType::kShutdown)));
    } catch (const net::NetError&) {
      // Worker already gone; the reap below still applies.
    }
    channel_.close();
    codec_.reset();
  }
  if (worker_pid_ > 0) {
    // The worker exits on `shutdown` or stdin EOF, whichever it sees
    // first; reap it so no zombie outlives the backend.
    ::waitpid(worker_pid_, nullptr, 0);
    worker_pid_ = 0;
  }
}

int SubprocessBackend::worker_pid() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return worker_pid_;
}

std::uint64_t SubprocessBackend::spawns() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spawns_;
}

std::string SubprocessBackend::wire_name() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return channel_.valid() && codec_ ? codec_->name() : "";
}

}  // namespace ffsm
