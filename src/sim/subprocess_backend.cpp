#include "sim/subprocess_backend.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/contracts.hpp"

namespace ffsm {

std::string discover_worker_path(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  if (const char* env = std::getenv("FFSM_SHARD_WORKER");
      env != nullptr && *env != '\0')
    return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string path(buf);
    if (const auto slash = path.rfind('/'); slash != std::string::npos) {
      path.erase(slash + 1);
      return path + "ffsm_shard_worker";
    }
  }
  return "ffsm_shard_worker";  // last resort: $PATH lookup via execlp
}

SubprocessBackend::SubprocessBackend(SubprocessBackendOptions options)
    : options_(std::move(options)) {}

SubprocessBackend::~SubprocessBackend() { shutdown(); }

void SubprocessBackend::die_locked(const std::string& what) {
  kill_worker_locked();
  throw ContractViolation("SubprocessBackend: " + what);
}

void SubprocessBackend::kill_worker_locked() noexcept {
  channel_.close();
  if (worker_pid_ > 0) {
    ::kill(worker_pid_, SIGKILL);
    ::waitpid(worker_pid_, nullptr, 0);
    worker_pid_ = 0;
  }
}

void SubprocessBackend::send_locked(std::string_view data) {
  // net::LineChannel::send is the full-buffer SIGPIPE-safe loop; a dead
  // worker surfaces as NetError, which this backend turns into its usual
  // reap-and-throw.
  try {
    channel_.send(data);
  } catch (const net::NetError&) {
    die_locked("write to worker failed (worker died?)");
  }
}

bool SubprocessBackend::read_line_locked(std::string& line) {
  try {
    return channel_.read_line(line);
  } catch (const net::NetError&) {
    return false;  // read error or torn line: same as EOF to callers
  }
}

std::string SubprocessBackend::expect_line_locked(const char* context) {
  std::string line;
  if (!read_line_locked(line))
    die_locked(std::string("worker closed the channel during ") + context);
  return line;
}

std::string SubprocessBackend::read_frame_locked(std::string first_line,
                                                 const char* context) {
  std::string frame = std::move(first_line);
  frame += '\n';
  for (;;) {
    const std::string line = expect_line_locked(context);
    frame += line;
    frame += '\n';
    if (line == "end") return frame;
  }
}

void SubprocessBackend::register_top_locked(const std::string& key,
                                            const TopState& top) {
  send_locked("top " + escape_token(key) + '\n' + top.machine_text);
  const std::string reply = expect_line_locked("top registration");
  if (reply != "ok") die_locked("worker rejected top '" + key + "': " + reply);
}

void SubprocessBackend::ensure_worker_locked() {
  if (channel_.valid() && worker_pid_ > 0) {
    const pid_t status = ::waitpid(worker_pid_, nullptr, WNOHANG);
    if (status == 0) return;  // worker is running
    // Exited (reaped just now) or already gone: forget the pid BEFORE the
    // cleanup below — SIGKILLing a reaped pid could hit whatever process
    // the kernel recycled it to.
    worker_pid_ = 0;
  }
  kill_worker_locked();  // close a stale channel, if any

  const std::string path = discover_worker_path(options_.worker_path);
  int sv[2];
  // SOCK_CLOEXEC: shards spawn workers concurrently during a parallel
  // drain, and a sibling fork between our socketpair() and exec would
  // otherwise inherit a copy of sv[1] — keeping this channel open after
  // our worker dies and so masking its EOF forever. dup2 below clears
  // CLOEXEC on the child's own stdin/stdout copies.
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
    throw ContractViolation("SubprocessBackend: socketpair failed");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw ContractViolation("SubprocessBackend: fork failed");
  }
  if (pid == 0) {
    // Child: bridge the channel to stdin/stdout and become the worker.
    ::dup2(sv[1], STDIN_FILENO);
    ::dup2(sv[1], STDOUT_FILENO);
    ::close(sv[0]);
    ::close(sv[1]);
    ::execlp(path.c_str(), "ffsm_shard_worker", static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed; the parent sees EOF on its first read
  }
  ::close(sv[1]);
  channel_ = net::LineChannel(net::Socket(sv[0]));
  worker_pid_ = static_cast<int>(pid);
  ++spawns_;

  // Handshake: configure, then re-register every top in registration
  // order (so a respawned worker rebuilds the exact same services).
  send_locked(encode_config(options_.config));
  const std::string reply = expect_line_locked("config");
  if (reply != "ok")
    die_locked("worker rejected config (is '" + path +
               "' an ffsm_shard_worker?): " + reply);
  for (const std::string& key : top_order_)
    register_top_locked(key, tops_.at(key));
}

void SubprocessBackend::register_added_top_locked(const std::string& key) {
  if (channel_.valid()) register_top_locked(key, tops_.at(key));
}

std::vector<FusionResponse> SubprocessBackend::drain(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TopState& top = top_of(key);
  if (top.queue.empty()) return {};
  ensure_worker_locked();

  std::string msg = "serve " + escape_token(key) + ' ' +
                    std::to_string(top.queue.size()) + '\n';
  for (const WireRequest& r : top.queue) msg += encode_request(r);
  send_locked(msg);

  const std::string header = expect_line_locked("serve");
  std::istringstream words(header);
  std::string directive;
  words >> directive;
  if (directive == "error") {
    // The worker is alive and in sync — the batch itself failed (the
    // analogue of generate_fusion_batch throwing in-process). Requests
    // stay queued for the cluster's retry path.
    throw ContractViolation("SubprocessBackend: worker failed to serve '" +
                            key + "': " + error_detail(words));
  }
  std::size_t count = 0;
  if (directive != "serving" || !(words >> count) ||
      count != top.queue.size())
    die_locked("unexpected serve reply '" + header + "'");

  std::vector<FusionResponse> responses;
  responses.reserve(count);
  try {
    for (std::size_t i = 0; i < count; ++i)
      responses.push_back(decode_response(
          read_frame_locked(expect_line_locked("response"), "response")));
    const std::string done = expect_line_locked("serve trailer");
    if (done != "done") die_locked("expected 'done', got '" + done + "'");
  } catch (const ContractViolation&) {
    // Either the channel died (already reaped by die_locked) or a frame
    // failed to decode — in both cases the stream is unusable; make the
    // restart explicit and keep the batch queued.
    kill_worker_locked();
    throw;
  }
  top.queue.clear();
  return responses;
}

ServiceStats SubprocessBackend::stats(const std::string& key) const {
  auto* self = const_cast<SubprocessBackend*>(this);
  const std::lock_guard<std::mutex> lock(mutex_);
  (void)top_of(key);  // key must be registered
  // Parent-side restart counter: worker counters restart with the worker
  // (like any real process-level metric), respawns are what this backend
  // survived — so `restarts` lives here, uniformly with TcpBackend.
  ServiceStats cold;
  cold.restarts = spawns_ > 0 ? spawns_ - 1 : 0;
  // No worker => nothing has served: all-zero counters, like a cold
  // service.
  if (!channel_.valid()) return cold;
  try {
    self->send_locked("stats " + escape_token(key) + '\n');
    const std::string first = self->expect_line_locked("stats");
    if (first.rfind("error", 0) == 0) return cold;
    ServiceStats remote =
        decode_stats(self->read_frame_locked(first, "stats"));
    remote.restarts = cold.restarts;
    return remote;
  } catch (const ContractViolation&) {
    // Channel died mid-query; the next drain respawns. Report cold.
    return cold;
  }
}

void SubprocessBackend::shutdown() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (channel_.valid()) {
    try {
      channel_.send("shutdown\n");
    } catch (const net::NetError&) {
      // Worker already gone; the reap below still applies.
    }
    channel_.close();
  }
  if (worker_pid_ > 0) {
    // The worker exits on `shutdown` or stdin EOF, whichever it sees
    // first; reap it so no zombie outlives the backend.
    ::waitpid(worker_pid_, nullptr, 0);
    worker_pid_ = 0;
  }
}

int SubprocessBackend::worker_pid() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return worker_pid_;
}

std::uint64_t SubprocessBackend::spawns() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spawns_;
}

}  // namespace ffsm
