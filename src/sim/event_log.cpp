#include "sim/event_log.hpp"

#include "util/contracts.hpp"

namespace ffsm {

State replay_recover(const Dfsm& machine, const EventLog& log) {
  return machine.run(log.view());
}

State replay_recover_from(const Dfsm& machine, State checkpoint_state,
                          const EventLog& log, std::size_t position) {
  FFSM_EXPECTS(position <= log.size());
  FFSM_EXPECTS(checkpoint_state < machine.size());
  return machine.run(checkpoint_state, log.view().subspan(position));
}

}  // namespace ffsm
