#include "sim/server.hpp"

#include "util/contracts.hpp"

namespace ffsm {

State Server::state() const {
  FFSM_EXPECTS(state_.has_value());
  return *state_;
}

void Server::apply(EventId event) {
  if (!state_) return;
  state_ = machine_.step(*state_, event);
}

void Server::corrupt(State wrong_state) {
  FFSM_EXPECTS(wrong_state < machine_.size());
  state_ = wrong_state;
}

void Server::restore(State correct_state) {
  FFSM_EXPECTS(correct_state < machine_.size());
  state_ = correct_state;
}

}  // namespace ffsm
