#include "sim/server.hpp"

#include "util/contracts.hpp"

namespace ffsm {

State Server::state() const {
  FFSM_EXPECTS(state_.has_value());
  return *state_;
}

void Server::apply(EventId event) {
  if (!state_) {
    if (machine_.subscribes(event)) ++dropped_events_;
    return;
  }
  state_ = machine_.step(*state_, event);
}

void Server::corrupt(State wrong_state) {
  FFSM_EXPECTS(wrong_state < machine_.size());
  state_ = wrong_state;
}

void Server::restore(State correct_state) {
  FFSM_EXPECTS(correct_state < machine_.size());
  state_ = correct_state;
}

FusionService::FusionService(Dfsm top, FusionServiceOptions options)
    : top_(std::move(top)),
      options_(options),
      cache_(options.cache_config) {}

void FusionService::validate(const FusionRequest& request) const {
  for (const Partition& p : request.originals)
    FFSM_EXPECTS(p.size() == top_.size());
}

std::uint64_t FusionService::submit(std::string client,
                                    FusionRequest request) {
  validate(request);
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  queue_.push_back({ticket, std::move(client), std::move(request)});
  ++stats_.requests_submitted;
  return ticket;
}

std::size_t FusionService::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t FusionService::discard_pending() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count = queue_.size();
  queue_.clear();
  return count;
}

std::vector<FusionService::Response> FusionService::drain(
    std::uint64_t obs_parent) {
  std::vector<Pending> batch;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batch.swap(queue_);
  }
  if (batch.empty()) return {};

  std::vector<FusionRequest> requests;
  requests.reserve(batch.size());
  for (Pending& p : batch) requests.push_back(std::move(p.request));

  BatchOptions batch_options;
  batch_options.parallel = options_.parallel;
  batch_options.pool = options_.pool;
  batch_options.incremental = options_.incremental;
  batch_options.cache = &cache_;
  batch_options.speculation.lookahead = options_.speculation_lookahead;
  batch_options.obs = options_.obs;
  batch_options.obs_top = options_.obs_top;
  batch_options.obs_parent =
      obs_parent != 0 ? obs_parent : obs::current_span_id();
  std::vector<FusionResult> results;
  try {
    results = generate_fusion_batch(top_, requests, batch_options);
  } catch (...) {
    // Don't lose the drained requests: put them back (ahead of anything
    // submitted meanwhile, preserving ticket order) and let the caller see
    // the failure.
    for (std::size_t i = 0; i < batch.size(); ++i)
      batch[i].request = std::move(requests[i]);
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.insert(queue_.begin(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
    throw;
  }

  std::vector<Response> responses;
  responses.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    responses.push_back({batch[i].ticket, std::move(batch[i].client),
                         std::move(results[i])});
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.requests_served += responses.size();
    ++stats_.batches_served;
    for (const Response& r : responses) {
      stats_.speculative_covers_launched +=
          r.result.stats.speculative_covers_launched;
      stats_.speculation_hits += r.result.stats.speculation_hits;
      stats_.speculation_wasted_closures +=
          r.result.stats.speculation_wasted_closures;
    }
  }
  return responses;
}

FusionService::Stats FusionService::stats() const {
  Stats out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
  }
  out.cache_hits = cache_.hits();
  out.cache_cold_misses = cache_.cold_misses();
  out.cache_eviction_misses = cache_.eviction_misses();
  out.cache_evictions = cache_.evictions();
  out.cache_entries = cache_.size();
  out.cache_bytes = cache_.approx_bytes();
  out.cache_admission_rejects = cache_.admission_rejects();
  out.cache_sketch_bytes = cache_.sketch_bytes();
  return out;
}

}  // namespace ffsm
