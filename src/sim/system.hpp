// FusedSystem: the end-to-end distributed system of the paper's model.
//
// Construction wires the full pipeline: reachable cross product of the n
// originals -> Algorithm 2 generates the backup machines for the requested
// tolerance -> n + m servers spawn. Running the system delivers one ordered
// event stream to every server while a "ghost" copy of the top tracks the
// true global state for verification (the simulator's replacement for the
// paper's failure-free oracle). Crash and Byzantine faults hit individual
// servers; recover() executes Algorithm 3 over the survivors' reports and
// reinstalls every server's correct state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fsm/dfsm.hpp"
#include "fsm/product.hpp"
#include "fusion/generator.hpp"
#include "partition/partition.hpp"
#include "recovery/recovery.hpp"
#include "sim/event_log.hpp"
#include "sim/event_source.hpp"
#include "sim/fault_injector.hpp"
#include "sim/server.hpp"
#include "util/rng.hpp"

namespace ffsm {

struct FusedSystemOptions {
  /// Crash-fault tolerance target f. For Byzantine tolerance of b faults
  /// pass f = 2*b (Theorem 2).
  std::uint32_t f = 1;
  /// Journal every delivered event (enables replay-based recovery as a
  /// cross-check / fallback; costs one EventId append per event).
  bool keep_event_log = false;
  GenerateOptions generation = {};
};

class FusedSystem {
 public:
  /// Builds cross product + fusion backups for `machines` and spawns the
  /// servers.
  FusedSystem(std::vector<Dfsm> machines, const FusedSystemOptions& options);

  [[nodiscard]] std::uint32_t original_count() const noexcept {
    return static_cast<std::uint32_t>(originals_.size());
  }
  [[nodiscard]] std::uint32_t backup_count() const noexcept {
    return static_cast<std::uint32_t>(servers_.size() - originals_.size());
  }
  [[nodiscard]] std::uint32_t fault_tolerance() const noexcept { return f_; }

  [[nodiscard]] const Dfsm& top() const noexcept { return cross_.top; }
  [[nodiscard]] const CrossProduct& cross_product() const noexcept {
    return cross_;
  }
  [[nodiscard]] std::span<const Partition> partitions() const noexcept {
    return partitions_;
  }
  [[nodiscard]] std::span<const Server> servers() const noexcept {
    return servers_;
  }

  /// Fault-free reference state of the top (the simulator's oracle).
  [[nodiscard]] State ghost_top_state() const noexcept { return ghost_; }

  /// Delivers one event to every server (and the ghost).
  void apply(EventId event);

  /// Pumps the source dry; returns the number of events delivered.
  std::size_t run(EventSource& source);

  /// Crash fault on server i.
  void crash(std::size_t server);

  /// Byzantine fault on server i under the given strategy. For kColluding
  /// the corrupt state projects `colluding_target` (pass the value of
  /// most_confusable_state()).
  void corrupt(std::size_t server, ByzantineStrategy strategy, Xoshiro256& rng,
               State colluding_target = 0);

  /// Wrong top state whose projection currently enjoys the most support —
  /// the colluding adversary's best target.
  [[nodiscard]] State most_confusable_state() const;

  /// Current reports of all servers (block per partition; crashed = no
  /// report).
  [[nodiscard]] std::vector<MachineReport> reports() const;

  /// Algorithm 3 over the current reports; when the vote is unique, every
  /// server (crashed, lying or healthy) is restored to its correct state.
  RecoveryResult recover();

  /// True iff every live server's state matches the ghost's projection.
  [[nodiscard]] bool verify() const;

  /// Subscribed events dropped by crashed servers so far, summed over all
  /// servers (see Server::dropped_events). A scenario whose environment
  /// quiesces while servers are down can assert this stays 0; a non-zero
  /// value quantifies how much stream each crash silently lost.
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// The event journal (empty unless options.keep_event_log was set).
  [[nodiscard]] const EventLog& event_log() const noexcept { return log_; }

  /// Replay-based recovery of one server from the journal (requires
  /// keep_event_log). Restores the server and returns its recovered state.
  /// The fusion path (recover()) is the paper's mechanism; this is the
  /// journaling baseline for comparison and belt-and-braces deployments.
  State recover_via_replay(std::size_t server);

 private:
  /// Machine state of server i when the top is in state t.
  [[nodiscard]] State project(std::size_t server, State top_state) const;
  /// Partition block of server i given its machine state.
  [[nodiscard]] std::uint32_t block_of_state(std::size_t server,
                                             State machine_state) const;

  std::vector<Dfsm> originals_;
  CrossProduct cross_;
  std::vector<Partition> partitions_;          // n originals then m backups
  std::vector<std::vector<std::uint32_t>> state_to_block_;  // per server
  std::vector<Server> servers_;
  EventLog log_;
  bool journaling_ = false;
  State ghost_ = 0;
  std::uint32_t f_ = 0;
};

/// One full scenario: stream events, inject planned faults, recover, verify.
struct ScenarioResult {
  std::size_t events_delivered = 0;
  std::size_t faults_injected = 0;
  /// Subscribed events crashed servers dropped during the stream
  /// (system-wide total at scenario end; 0 == the crashed servers saw a
  /// quiescent environment).
  std::uint64_t events_dropped = 0;
  bool recovery_unique = false;
  bool recovered_correctly = false;  // recovered top == ghost top
  bool verified = false;             // all servers correct post-recovery
};

[[nodiscard]] ScenarioResult run_scenario(FusedSystem& system,
                                          EventSource& events,
                                          std::span<const PlannedFault> plan,
                                          ByzantineStrategy strategy,
                                          std::uint64_t seed);

}  // namespace ffsm
