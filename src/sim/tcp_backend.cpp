#include "sim/tcp_backend.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <utility>

#include "sim/subprocess_backend.hpp"
#include "util/contracts.hpp"

namespace ffsm {

TcpBackend::TcpBackend(TcpBackendOptions options)
    : options_(std::move(options)) {
  FFSM_EXPECTS(options_.port != 0);
}

TcpBackend::~TcpBackend() { shutdown(); }

void TcpBackend::drop_connection_locked() noexcept { channel_.close(); }

void TcpBackend::register_top_locked(const std::string& key,
                                     const TopState& top) {
  channel_.send("top " + escape_token(key) + '\n' + top.machine_text);
  const std::string reply = channel_.expect_line("top registration");
  if (reply != "ok") {
    drop_connection_locked();
    throw ContractViolation("TcpBackend: worker rejected top '" + key +
                            "': " + reply);
  }
}

void TcpBackend::connect_once_locked() {
  net::Socket socket = net::Socket::connect(options_.host, options_.port,
                                            options_.connect_timeout);
  // Reads carry no timeout (generation legitimately takes long), so
  // keepalive is what bounds a half-open connection: a vanished peer host
  // turns into a read error after idle + interval * probes seconds, and
  // the failed-drain path takes over from there.
  if (options_.keepalive_idle_s > 0)
    socket.enable_keepalive(options_.keepalive_idle_s,
                            options_.keepalive_interval_s,
                            options_.keepalive_probes);
  channel_ = net::LineChannel(std::move(socket));
  try {
    // A listen-mode worker starts every connection with clean state, so
    // the full handshake replays: config, then every top in registration
    // order (the same order a SubprocessBackend respawn re-registers in).
    channel_.send(encode_config(options_.config));
    const std::string reply = channel_.expect_line("config");
    if (reply != "ok") {
      drop_connection_locked();
      throw ContractViolation(
          "TcpBackend: worker rejected config (is " + options_.host + ':' +
          std::to_string(options_.port) +
          " an ffsm_shard_worker --listen?): " + reply);
    }
    for (const std::string& key : top_order_)
      register_top_locked(key, tops_.at(key));
  } catch (const net::NetError&) {
    drop_connection_locked();  // half-shaken connection is unusable
    throw;
  }
  ++connects_;
}

void TcpBackend::ensure_connected() {
  // with_retry sleeps between attempts with no lock held: a restarting
  // worker must not block this shard's submit()/pending()/stats() for
  // seconds of backoff.
  net::with_retry(options_.connect_retry, [&] {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!channel_.valid()) connect_once_locked();
  });
}

void TcpBackend::register_added_top_locked(const std::string& key) {
  if (!channel_.valid()) return;
  try {
    register_top_locked(key, tops_.at(key));
  } catch (const net::NetError&) {
    // The connection is dead, not the registration: drop it so the next
    // attempt reconnects lazily instead of re-hitting a corpse that
    // still reports valid().
    drop_connection_locked();
    throw;
  }
}

std::vector<FusionResponse> TcpBackend::serve_batch_locked(
    const std::string& key, TopState& top) {
  std::vector<FusionResponse> responses;
  responses.reserve(top.queue.size());
  const std::size_t window = std::max<std::size_t>(1, options_.serve_window);
  for (std::size_t start = 0; start < top.queue.size(); start += window) {
    // The backpressure window: at most `window` request frames are on the
    // wire before we block on their responses. A wedged worker stalls this
    // drain here, with one window buffered, instead of swallowing the
    // whole backlog.
    const std::size_t count = std::min(window, top.queue.size() - start);
    std::string msg = "serve " + escape_token(key) + ' ' +
                      std::to_string(count) + '\n';
    for (std::size_t i = 0; i < count; ++i)
      msg += encode_request(top.queue[start + i]);
    channel_.send(msg);

    const std::string header = channel_.expect_line("serve");
    std::istringstream words(header);
    std::string directive;
    words >> directive;
    if (directive == "error") {
      // The worker is alive and in sync — the batch itself failed. The
      // whole backlog stays queued for the cluster's retry path; windows
      // already served this round get re-served then, which is harmless
      // (generation is deterministic) and costs only worker counters.
      throw ContractViolation("TcpBackend: worker failed to serve '" + key +
                              "': " + error_detail(words));
    }
    std::size_t n = 0;
    if (directive != "serving" || !(words >> n) || n != count) {
      drop_connection_locked();
      throw ContractViolation("TcpBackend: unexpected serve reply '" +
                              header + "'");
    }
    try {
      for (std::size_t i = 0; i < n; ++i)
        responses.push_back(decode_response(
            channel_.read_frame(channel_.expect_line("response"),
                                "response")));
      const std::string done = channel_.expect_line("serve trailer");
      if (done != "done")
        throw ContractViolation("TcpBackend: expected 'done', got '" + done +
                                "'");
    } catch (const net::NetError&) {
      throw;  // transport died; drain() reconnects and re-submits
    } catch (const ContractViolation&) {
      // A frame failed to decode: the stream position is unknowable, so
      // the connection must go; the batch stays queued.
      drop_connection_locked();
      throw;
    }
  }
  // Only now is the exchange complete — every response arrived, nothing
  // can be lost. Responses are in queue order == ticket order.
  top.queue.clear();
  return responses;
}

std::vector<FusionResponse> TcpBackend::drain(const std::string& key) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (top_of(key).queue.empty()) return {};
  }
  // In-flight re-submit: a connection that drops mid-exchange is
  // reconnected (with its own connect backoff) and the batch re-sent,
  // options_.serve_retry.max_attempts times in total. Anything else —
  // protocol errors, worker-side batch failures — propagates immediately
  // with the batch still queued. All backoff sleeps run unlocked.
  return net::with_retry(
      options_.serve_retry, [&]() -> std::vector<FusionResponse> {
        try {
          ensure_connected();
          const std::lock_guard<std::mutex> lock(mutex_);
          TopState& top = top_of(key);
          if (top.queue.empty()) return {};  // discarded while connecting
          return serve_batch_locked(key, top);
        } catch (const net::NetError&) {
          const std::lock_guard<std::mutex> lock(mutex_);
          drop_connection_locked();
          throw;
        }
      });
}

ServiceStats TcpBackend::stats(const std::string& key) const {
  auto* self = const_cast<TcpBackend*>(this);
  const std::lock_guard<std::mutex> lock(mutex_);
  (void)top_of(key);  // key must be registered
  // Parent-side restart counter: worker counters reset per connection
  // (real process semantics), reconnects are what this backend survived.
  ServiceStats cold;
  cold.restarts = connects_ > 0 ? connects_ - 1 : 0;
  if (!channel_.valid()) return cold;
  try {
    self->channel_.send("stats " + escape_token(key) + '\n');
    const std::string first = self->channel_.expect_line("stats");
    if (first.rfind("error", 0) == 0) return cold;
    ServiceStats remote =
        decode_stats(self->channel_.read_frame(first, "stats"));
    remote.restarts = cold.restarts;
    return remote;
  } catch (const ContractViolation&) {
    // Transport or protocol died mid-query; the next drain reconnects.
    self->drop_connection_locked();
    return cold;
  }
}

void TcpBackend::shutdown() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!channel_.valid()) return;
  try {
    // Fire-and-close, like SubprocessBackend: waiting for "bye" would
    // block shutdown on a vanished peer (reads carry no timeout), and the
    // worker ends the connection on EOF just the same.
    channel_.send("shutdown\n");
  } catch (const ContractViolation&) {
  }
  drop_connection_locked();
}

std::uint64_t TcpBackend::connects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return connects_;
}

bool TcpBackend::connected() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return channel_.valid();
}

// ------------------------------------------------- ListenerWorkerProcess

ListenerWorkerProcess::ListenerWorkerProcess()
    : ListenerWorkerProcess(Options()) {}

ListenerWorkerProcess::ListenerWorkerProcess(Options options) {
  const std::string path = discover_worker_path(options.worker_path);
  int out_pipe[2];
  if (::pipe2(out_pipe, O_CLOEXEC) != 0)
    throw ContractViolation("ListenerWorkerProcess: pipe failed");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    throw ContractViolation("ListenerWorkerProcess: fork failed");
  }
  if (pid == 0) {
    // Child: stdout carries the `listening <port>` banner; the protocol
    // itself runs over accepted connections.
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    const std::string port_arg = std::to_string(options.port);
    ::execlp(path.c_str(), "ffsm_shard_worker", "--listen", port_arg.c_str(),
             static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed; the parent sees EOF on the banner pipe
  }
  ::close(out_pipe[1]);
  pid_ = static_cast<int>(pid);

  std::string banner;
  for (;;) {
    char c = 0;
    const ssize_t n = ::read(out_pipe[0], &c, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || c == '\n') break;
    banner += c;
  }
  ::close(out_pipe[0]);

  std::istringstream words(banner);
  std::string directive;
  unsigned port = 0;
  if (!(words >> directive >> port) || directive != "listening" ||
      port == 0 || port > 65535) {
    kill();
    throw ContractViolation(
        "ListenerWorkerProcess: worker did not report a listening port "
        "(got '" + banner + "'; is '" + path + "' an ffsm_shard_worker?)");
  }
  port_ = static_cast<std::uint16_t>(port);
}

void ListenerWorkerProcess::kill() noexcept {
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = 0;
  }
}

}  // namespace ffsm
