#include "sim/tcp_backend.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>
#include <utility>

#include "sim/subprocess_backend.hpp"
#include "util/contracts.hpp"

namespace ffsm {
namespace {

// The one place TcpBackendOptions maps onto ReplicaBackendOptions: every
// serving knob of either struct must appear here (see the lockstep note
// on TcpBackendOptions) — a field missing from this copy is silently
// dropped for TcpBackend users.
ReplicaBackendOptions as_replica_options(TcpBackendOptions options) {
  FFSM_EXPECTS(options.port != 0);
  ReplicaBackendOptions replica;
  replica.endpoints = {{std::move(options.host), options.port}};
  replica.config = std::move(options.config);
  replica.wire = options.wire;
  replica.connect_timeout = options.connect_timeout;
  replica.connect_retry = options.connect_retry;
  replica.serve_retry = options.serve_retry;
  replica.serve_window = options.serve_window;
  replica.keepalive_idle_s = options.keepalive_idle_s;
  replica.keepalive_interval_s = options.keepalive_interval_s;
  replica.keepalive_probes = options.keepalive_probes;
  replica.obs = options.obs;
  return replica;
}

}  // namespace

TcpBackend::TcpBackend(TcpBackendOptions options)
    : ReplicaBackend(as_replica_options(std::move(options))) {}

// ------------------------------------------------- ListenerWorkerProcess

ListenerWorkerProcess::ListenerWorkerProcess()
    : ListenerWorkerProcess(Options()) {}

ListenerWorkerProcess::ListenerWorkerProcess(Options options) {
  const std::string path = discover_worker_path(options.worker_path);
  int out_pipe[2];
  if (::pipe2(out_pipe, O_CLOEXEC) != 0)
    throw ContractViolation("ListenerWorkerProcess: pipe failed");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    throw ContractViolation("ListenerWorkerProcess: fork failed");
  }
  if (pid == 0) {
    // Child: stdout carries the `listening <port>` banner; the protocol
    // itself runs over accepted connections.
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    const std::string port_arg = std::to_string(options.port);
    const std::string wire_arg =
        std::string("--wire=") + wire_mode_name(options.wire);
    ::execlp(path.c_str(), "ffsm_shard_worker", "--listen", port_arg.c_str(),
             wire_arg.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed; the parent sees EOF on the banner pipe
  }
  ::close(out_pipe[1]);
  pid_ = static_cast<int>(pid);

  std::string banner;
  for (;;) {
    char c = 0;
    const ssize_t n = ::read(out_pipe[0], &c, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || c == '\n') break;
    banner += c;
  }
  ::close(out_pipe[0]);

  std::istringstream words(banner);
  std::string directive;
  unsigned port = 0;
  if (!(words >> directive >> port) || directive != "listening" ||
      port == 0 || port > 65535) {
    kill();
    throw ContractViolation(
        "ListenerWorkerProcess: worker did not report a listening port "
        "(got '" + banner + "'; is '" + path + "' an ffsm_shard_worker?)");
  }
  port_ = static_cast<std::uint16_t>(port);
}

void ListenerWorkerProcess::kill() noexcept {
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = 0;
  }
}

}  // namespace ffsm
