#include "sim/wire_conversation.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace ffsm {

WireConversation::WireConversation(net::LineChannel channel,
                                   std::unique_ptr<WireCodec> codec,
                                   obs::Obs* obs)
    : channel_(std::move(channel)), codec_(std::move(codec)), obs_(obs) {
  FFSM_EXPECTS(channel_.valid());
  FFSM_EXPECTS(codec_ != nullptr);
}

WireConversation::~WireConversation() = default;

bool WireConversation::poisoned() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return dead_;
}

std::size_t WireConversation::active_exchanges() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return active_;
}

void WireConversation::poison_locked(const std::string& reason) noexcept {
  if (dead_) return;
  dead_ = true;
  death_reason_ = "wire conversation poisoned: " + reason;
  // Wake a reader blocked in recv on another thread with EOF; the fd
  // itself stays open until destruction, so nobody can race a recycled fd.
  channel_.shutdown_io();
  frames_ready_.notify_all();
}

void WireConversation::poison(const std::string& reason) noexcept {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  poison_locked(reason);
}

void WireConversation::send_goodbye(const Frame& frame) noexcept {
  try {
    std::string buffer;
    codec_->encode(frame, buffer);
    const std::lock_guard<std::mutex> lock(send_mutex_);
    channel_.send(buffer);
  } catch (...) {
    // Goodbye is best-effort: the peer sees EOF either way.
  }
}

void WireConversation::route_locked(Frame&& frame) {
  const auto it = inboxes_.find(frame.exchange);
  if (it == inboxes_.end()) {
    // A reply nobody awaits: some exchange gave up mid-dialogue, so frame
    // boundaries are no longer trustworthy — fail the whole connection
    // and let the backend reconnect from its queues.
    poison_locked("frame for unknown exchange " +
                  std::to_string(frame.exchange));
    return;
  }
  it->second.push_back(std::move(frame));
}

Frame WireConversation::receive_for(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(state_mutex_);
  for (;;) {
    const auto it = inboxes_.find(id);
    FFSM_EXPECTS(it != inboxes_.end());
    if (!it->second.empty()) {
      Frame frame = std::move(it->second.front());
      it->second.pop_front();
      return frame;
    }
    if (dead_) throw net::NetError(death_reason_);
    if (reading_) {
      // Another exchange is on the wire for all of us; it will route our
      // frame here and wake us.
      frames_ready_.wait(lock);
      continue;
    }
    // Reader election: nobody is reading, so this thread pulls the next
    // frame for whichever exchange it belongs to.
    reading_ = true;
    lock.unlock();
    Frame frame;
    const std::uint64_t decode_start =
        obs_ != nullptr && obs_->enabled() ? obs_->now_us() : 0;
    try {
      frame = codec_->expect(channel_, "conversation");
    } catch (const std::exception& error) {
      lock.lock();
      reading_ = false;
      poison_locked(error.what());
      throw;
    }
    if (obs_ != nullptr && obs_->enabled())
      obs_->record("wire.decode", obs_->now_us() - decode_start);
    lock.lock();
    reading_ = false;
    route_locked(std::move(frame));
    frames_ready_.notify_all();
  }
}

Frame WireConversation::receive_exclusive() {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (dead_) throw net::NetError(death_reason_);
  }
  try {
    const std::uint64_t decode_start =
        obs_ != nullptr && obs_->enabled() ? obs_->now_us() : 0;
    Frame frame = codec_->expect(channel_, "reply");
    if (obs_ != nullptr && obs_->enabled())
      obs_->record("wire.decode", obs_->now_us() - decode_start);
    return frame;
  } catch (const std::exception& error) {
    poison(error.what());
    throw;
  }
}

void WireConversation::send_buffer(const std::string& buffer) {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (dead_) throw net::NetError(death_reason_);
  }
  const std::lock_guard<std::mutex> lock(send_mutex_);
  try {
    channel_.send(buffer);
  } catch (const net::NetError& error) {
    poison(error.what());
    throw;
  }
}

WireConversation::Exchange WireConversation::open(
    const std::shared_ptr<WireConversation>& self) {
  FFSM_EXPECTS(self != nullptr);
  if (self->multiplexed()) {
    const std::lock_guard<std::mutex> lock(self->state_mutex_);
    if (self->dead_) throw net::NetError(self->death_reason_);
    const std::uint64_t id = self->next_exchange_++;
    self->inboxes_.emplace(id, std::deque<Frame>{});
    ++self->active_;
    return Exchange(self, id, std::unique_lock<std::mutex>());
  }
  // Text wire: the exchange owns the whole connection until closed.
  std::unique_lock<std::mutex> exclusive(self->exclusive_mutex_);
  const std::lock_guard<std::mutex> lock(self->state_mutex_);
  if (self->dead_) throw net::NetError(self->death_reason_);
  ++self->active_;
  return Exchange(self, 0, std::move(exclusive));
}

// ---------------------------------------------------------------- Exchange

WireConversation::Exchange::Exchange(
    std::shared_ptr<WireConversation> conversation, std::uint64_t id,
    std::unique_lock<std::mutex> exclusive)
    : conversation_(std::move(conversation)),
      id_(id),
      exclusive_(std::move(exclusive)) {}

WireConversation::Exchange::Exchange(Exchange&& other) noexcept
    : conversation_(std::move(other.conversation_)),
      id_(other.id_),
      exclusive_(std::move(other.exclusive_)),
      sent_at_us_(other.sent_at_us_) {
  other.conversation_.reset();
  other.id_ = 0;
  other.sent_at_us_ = 0;
}

WireConversation::Exchange& WireConversation::Exchange::operator=(
    Exchange&& other) noexcept {
  if (this != &other) {
    close();
    conversation_ = std::move(other.conversation_);
    id_ = other.id_;
    exclusive_ = std::move(other.exclusive_);
    sent_at_us_ = other.sent_at_us_;
    other.conversation_.reset();
    other.id_ = 0;
    other.sent_at_us_ = 0;
  }
  return *this;
}

WireConversation::Exchange::~Exchange() { close(); }

void WireConversation::Exchange::close() noexcept {
  if (!conversation_) return;
  {
    const std::lock_guard<std::mutex> lock(conversation_->state_mutex_);
    const auto it = conversation_->inboxes_.find(id_);
    if (it != conversation_->inboxes_.end()) {
      // Frames nobody consumed mean the dialogue was abandoned mid-way;
      // the stream position is unknowable (see route_locked).
      if (!it->second.empty())
        conversation_->poison_locked("exchange closed with pending frames");
      conversation_->inboxes_.erase(it);
    }
    --conversation_->active_;
  }
  if (exclusive_.owns_lock()) exclusive_.unlock();
  conversation_.reset();
}

void WireConversation::Exchange::send(std::vector<Frame> frames) {
  FFSM_EXPECTS(conversation_ != nullptr);
  obs::Obs* obs = conversation_->obs_;
  const bool timed = obs != nullptr && obs->enabled();
  const std::uint64_t encode_start = timed ? obs->now_us() : 0;
  std::string buffer;
  const bool multiplexed = conversation_->multiplexed();
  for (Frame& frame : frames) {
    if (multiplexed) frame.exchange = id_;
    conversation_->codec_->encode(frame, buffer);
  }
  if (timed) obs->record("wire.encode", obs->now_us() - encode_start);
  conversation_->send_buffer(buffer);
  if (timed) sent_at_us_ = obs->now_us();
}

void WireConversation::Exchange::send(Frame frame) {
  FFSM_EXPECTS(conversation_ != nullptr);
  obs::Obs* obs = conversation_->obs_;
  const bool timed = obs != nullptr && obs->enabled();
  const std::uint64_t encode_start = timed ? obs->now_us() : 0;
  if (conversation_->multiplexed()) frame.exchange = id_;
  std::string buffer;
  conversation_->codec_->encode(frame, buffer);
  if (timed) obs->record("wire.encode", obs->now_us() - encode_start);
  conversation_->send_buffer(buffer);
  if (timed) sent_at_us_ = obs->now_us();
}

Frame WireConversation::Exchange::receive() {
  FFSM_EXPECTS(conversation_ != nullptr);
  Frame frame = conversation_->multiplexed()
                    ? conversation_->receive_for(id_)
                    : conversation_->receive_exclusive();
  if (sent_at_us_ != 0) {
    // Send-to-first-reply: later frames of a streamed reply (serving /
    // response / done) extend the same dialogue, so only the first one
    // closes the round-trip sample.
    conversation_->obs_->span_since("wire.roundtrip", sent_at_us_,
                                    {.exchange = id_});
    sent_at_us_ = 0;
  }
  return frame;
}

}  // namespace ffsm
