// A simulated server running one DFSM (original or backup).
//
// Mirrors the paper's model: servers share no state, receive every event
// from the environment, and ignore events outside their machine's event set.
// Crash faults erase the execution state; Byzantine faults silently replace
// it with an arbitrary (wrong) one — the underlying DFSM itself stays intact
// in both cases (§2: the machine description survives on permanent storage,
// only the *current state* is lost or corrupted).
#pragma once

#include <optional>
#include <utility>

#include "fsm/dfsm.hpp"

namespace ffsm {

class Server {
 public:
  explicit Server(Dfsm machine)
      : machine_(std::move(machine)), state_(machine_.initial()) {}

  [[nodiscard]] const Dfsm& machine() const noexcept { return machine_; }

  [[nodiscard]] bool crashed() const noexcept { return !state_.has_value(); }

  /// Current execution state; contract violation when crashed.
  [[nodiscard]] State state() const;

  /// Applies an environment event; crashed servers drop events (the
  /// environment quiesces during recovery in the paper's model, but the
  /// simulator tolerates stragglers by making this a no-op).
  void apply(EventId event);

  /// Crash fault: lose the execution state.
  void crash() noexcept { state_.reset(); }

  /// Byzantine fault: silently adopt an arbitrary state.
  void corrupt(State wrong_state);

  /// Recovery handshake: reinstall the correct state (after Algorithm 3).
  void restore(State correct_state);

 private:
  Dfsm machine_;
  std::optional<State> state_;
};

}  // namespace ffsm
