// A simulated server running one DFSM (original or backup).
//
// Mirrors the paper's model: servers share no state, receive every event
// from the environment, and ignore events outside their machine's event set.
// Crash faults erase the execution state; Byzantine faults silently replace
// it with an arbitrary (wrong) one — the underlying DFSM itself stays intact
// in both cases (§2: the machine description survives on permanent storage,
// only the *current state* is lost or corrupted).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fsm/dfsm.hpp"
#include "fusion/generator.hpp"
#include "sim/messages.hpp"

namespace ffsm {

class Server {
 public:
  explicit Server(Dfsm machine)
      : machine_(std::move(machine)), state_(machine_.initial()) {}

  [[nodiscard]] const Dfsm& machine() const noexcept { return machine_; }

  [[nodiscard]] bool crashed() const noexcept { return !state_.has_value(); }

  /// Current execution state; contract violation when crashed.
  [[nodiscard]] State state() const;

  /// Applies an environment event; crashed servers drop events (the
  /// environment quiesces during recovery in the paper's model, but the
  /// simulator tolerates stragglers by making this a no-op and counting
  /// the drop — see dropped_events()).
  void apply(EventId event);

  /// Subscribed events dropped while crashed (foreign events are ignored
  /// healthy or not, so they never count). A scenario that claims the
  /// environment quiesced during recovery can assert this stayed 0.
  [[nodiscard]] std::uint64_t dropped_events() const noexcept {
    return dropped_events_;
  }

  /// Crash fault: lose the execution state.
  void crash() noexcept { state_.reset(); }

  /// Byzantine fault: silently adopt an arbitrary state.
  void corrupt(State wrong_state);

  /// Recovery handshake: reinstall the correct state (after Algorithm 3).
  void restore(State correct_state);

 private:
  Dfsm machine_;
  std::optional<State> state_;
  std::uint64_t dropped_events_ = 0;
};

// ----------------------------------------------------------- FusionService
//
// The first multi-client scenario: a service that owns one top machine
// (the expensive reachable cross product) and serves fusion-generation
// requests from many clients. Clients submit (originals, f, policy)
// requests at any time from any thread; drain() serves everything queued as
// one generate_fusion_batch call, so concurrent clients share the lattice
// work through the service's persistent closure cache — both within a batch
// and across successive batches.

struct FusionServiceOptions {
  /// Fan queued requests across the pool when serving a batch.
  bool parallel = true;
  ThreadPool* pool = nullptr;
  /// Per-request engine mode (see GenerateOptions::incremental).
  bool incremental = true;
  /// Bound + eviction policy for the persistent cross-batch closure cache.
  /// Bounding the cache never changes served results — an evicted cover is
  /// recomputed on the next miss — it only caps the service's resident
  /// memory (LowerCoverCacheConfig defaults to LRU with a 1024-entry cap;
  /// CacheEvictionPolicy::kUnbounded restores the legacy grow-forever
  /// behaviour).
  LowerCoverCacheConfig cache_config = {};
  /// Speculative-descent lookahead applied to every served request (see
  /// SpeculationOptions::lookahead; only consulted when parallel &&
  /// incremental).
  std::uint32_t speculation_lookahead = 2;
  /// Optional observability context (nullptr = uninstrumented), forwarded
  /// into every served batch (gen.request spans, lower-cover/cache
  /// metrics); the service itself adds `cache.warm_replay` (time to replay
  /// a warm snapshot into the closure cache). Never affects results.
  obs::Obs* obs = nullptr;
  /// Top tag stamped on this service's spans (typically the serving key,
  /// e.g. "sensors"); empty = untagged.
  std::string obs_top;
};

class FusionService {
 public:
  /// A served request, in submission (ticket) order. The wire type
  /// (sim/messages.hpp) — in-process and cross-process serving return the
  /// same representation.
  using Response = FusionResponse;

  /// Lifetime counters — the wire type (sim/messages.hpp), so a remote
  /// worker's stats and a local service's are interchangeable.
  using Stats = ServiceStats;

  explicit FusionService(Dfsm top, FusionServiceOptions options = {});

  [[nodiscard]] const Dfsm& top() const noexcept { return top_; }

  /// Precondition check applied by submit(): every partition in
  /// `request.originals` must partition top()'s states. Public so callers
  /// that move requests in can validate *before* the move — submit takes
  /// its arguments by value, so a throw after parameter construction
  /// would leave the caller holding a moved-from request (see
  /// FusionCluster::serve_shard).
  void validate(const FusionRequest& request) const;

  /// Queues a request; thread-safe. Precondition: validate(request).
  /// Returns the ticket identifying the response.
  std::uint64_t submit(std::string client, FusionRequest request);

  /// Number of queued, not yet served requests; thread-safe.
  [[nodiscard]] std::size_t pending() const;

  /// Drops every queued, not yet served request and returns how many were
  /// discarded; thread-safe. The escape hatch for a backlog a failed
  /// drain() keeps re-queueing (see FusionCluster::discard_pending).
  std::size_t discard_pending();

  /// Serves every queued request as one batch and returns the responses in
  /// ticket order. Thread-safe; concurrent submits land in the next batch.
  ///
  /// `obs_parent` is the span id this batch's `gen.request` spans are
  /// parented under: pass the id carried in a serve frame when the caller
  /// is a worker serving a remote drain (cross-process trace stitching).
  /// The default 0 falls back to the calling thread's innermost live
  /// ScopedSpan (obs::current_span_id()), which nests in-process serving
  /// under the enclosing cluster.serve_top automatically.
  std::vector<Response> drain(std::uint64_t obs_parent = 0);

  [[nodiscard]] Stats stats() const;

  /// The persistent cross-batch closure memo (exposed for diagnostics; see
  /// ROADMAP "cross-request closure cache eviction").
  [[nodiscard]] const LowerCoverCache& cache() const noexcept {
    return cache_;
  }

  /// Replays a warm cache snapshot (LowerCoverCache::export_hot from a
  /// predecessor — the other half of the kCacheWarm handoff) into the
  /// closure cache; thread-safe. Entries must key partitions of top()'s
  /// state set; anything else is a caller bug the cache cannot detect, so
  /// the backends only ever replay snapshots exported for the same top.
  void warm_cache(const std::vector<WarmCacheEntry>& entries) {
    const obs::ScopedSpan span(options_.obs, "cache.warm_replay",
                               {.top = options_.obs_top});
    cache_.import(entries);
  }

 private:
  struct Pending {
    std::uint64_t ticket;
    std::string client;
    FusionRequest request;
  };

  Dfsm top_;
  FusionServiceOptions options_;
  LowerCoverCache cache_;
  mutable std::mutex mutex_;       // guards queue_, next_ticket_, stats_
  std::vector<Pending> queue_;
  std::uint64_t next_ticket_ = 1;
  Stats stats_;
};

}  // namespace ffsm
