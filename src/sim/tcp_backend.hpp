// TcpBackend: a cluster shard served by a worker on another machine.
//
// The multi-host ShardBackend: the same wire protocol SubprocessBackend
// speaks over a socketpair (sim/messages.hpp), spoken over a TCP
// connection to an `ffsm_shard_worker --listen <port>` — fusion machines
// travel as self-contained to_text, so a remote worker serves fusions
// bit-identical to in-process generation, and loopback TCP is hard-asserted
// against InProcessBackend in bench_service_cluster.
//
// Failure model (the cluster's, unchanged): queueing lives parent-side;
// drain(key) ships the backlog and clears it only once every response
// arrived, so a dropped connection is never lossy. Connects are lazy and
// retried with bounded exponential backoff (net::RetryPolicy); each fresh
// connection replays the config/top handshake, because a worker in listen
// mode starts every connection with clean per-connection state (a remote
// restart therefore looks exactly like a SubprocessBackend respawn: cold
// caches, reset counters, identical results). A connection that drops
// mid-serve is reconnected and the batch re-submitted in-flight
// (options.serve_retry); once those attempts are exhausted drain() throws
// with the batch still queued and the cluster's failed-drain path takes
// over — re-queue, retry next round, discard_pending as the escape hatch.
//
// Backpressure: a drain never puts more than options.serve_window request
// frames on the wire per exchange. A slow or wedged worker therefore
// stalls this shard's drain after one window instead of buffering an
// unbounded backlog in the socket and the worker's memory; the other
// shards keep draining in parallel.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/line_channel.hpp"
#include "net/retry.hpp"
#include "sim/backend.hpp"

namespace ffsm {

struct TcpBackendOptions {
  /// Worker address (ffsm_shard_worker --listen on that host).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Wire-safe service options sent at every (re)connect.
  ShardServiceConfig config = {};
  /// Bounded time per connect attempt against a black-holed host.
  std::chrono::milliseconds connect_timeout{2000};
  /// Backoff across connect attempts (worker restarting, port not yet
  /// rebound). Exhausted attempts fail the drain.
  net::RetryPolicy connect_retry = {};
  /// In-flight re-submit: how often a serve batch whose connection dropped
  /// mid-exchange is re-sent (each attempt reconnects first, under
  /// connect_retry) before the drain fails and the cluster re-queues.
  net::RetryPolicy serve_retry = {2, std::chrono::milliseconds(50),
                                  std::chrono::milliseconds(1000), 2};
  /// Maximum request frames in flight per serve exchange — the
  /// backpressure window. A backlog larger than this drains as several
  /// sequential exchanges, each waiting for its responses.
  std::size_t serve_window = 32;
  /// TCP keepalive probing (seconds idle before probing, seconds between
  /// probes, probes before declaring the peer dead). Generation can
  /// legitimately take minutes, so reads carry no timeout — keepalive is
  /// what turns a *half-open* connection (peer host died without FIN/RST)
  /// into a bounded-time NetError instead of a drain wedged forever.
  /// idle 0 disables.
  int keepalive_idle_s = 30;
  int keepalive_interval_s = 10;
  int keepalive_probes = 3;
};

class TcpBackend final : public QueuedWireBackend {
 public:
  explicit TcpBackend(TcpBackendOptions options);
  ~TcpBackend() override;

  TcpBackend(const TcpBackend&) = delete;
  TcpBackend& operator=(const TcpBackend&) = delete;

  // add_top / validate / submit / pending / discard_pending: the shared
  // parent-side queueing of QueuedWireBackend.
  std::vector<FusionResponse> drain(const std::string& key) override;
  /// Worker counters for `key` (per-connection on the worker side);
  /// all-zero when disconnected, with `restarts` filled parent-side.
  [[nodiscard]] ServiceStats stats(const std::string& key) const override;
  /// Graceful goodbye (`shutdown` + close). The remote worker keeps
  /// listening — only this backend's serving capacity goes away; queued
  /// requests stay queued and the next drain() reconnects.
  void shutdown() override;

  /// Successful connections so far — 1 after the first drain, +1 per
  /// reconnect. restarts in stats() is connects() - 1.
  [[nodiscard]] std::uint64_t connects() const;
  /// Whether a connection is currently open (tests probe recovery).
  [[nodiscard]] bool connected() const;

 private:
  /// A live connection learns new tops immediately; otherwise the next
  /// reconnect handshake registers them with the rest.
  void register_added_top_locked(const std::string& key) override;

  /// Connects + handshakes + re-registers tops if disconnected, retrying
  /// per connect_retry with the backoff sleeps OUTSIDE the mutex (clients
  /// keep submitting to a shard whose worker is restarting). Throws
  /// NetError once attempts are exhausted.
  void ensure_connected();
  /// One connect attempt + config/top handshake; throws NetError on
  /// transport failure, ContractViolation on a protocol-level rejection.
  void connect_once_locked();
  void drop_connection_locked() noexcept;
  /// Sends the registration frame for one top and expects "ok".
  void register_top_locked(const std::string& key, const TopState& top);
  /// Ships `top`'s whole backlog as serve_window-sized exchanges;
  /// responses in queue (= ticket) order. Clears the queue only after the
  /// last window succeeded. NetError => connection already dropped.
  std::vector<FusionResponse> serve_batch_locked(const std::string& key,
                                                 TopState& top);

  TcpBackendOptions options_;
  net::LineChannel channel_;
  std::uint64_t connects_ = 0;
};

/// A locally spawned `ffsm_shard_worker --listen` process — the loopback
/// harness tests, benches and examples use to stand in for a remote host.
/// Spawns at construction, parses the worker's `listening <port>` banner
/// (so port 0 = ephemeral works), SIGKILLs + reaps at destruction.
class ListenerWorkerProcess {
 public:
  struct Options {
    /// Worker binary; empty = the SubprocessBackend discovery rules
    /// ($FFSM_SHARD_WORKER, then next to the current executable).
    std::string worker_path;
    /// 0 = ephemeral; pass a previous instance's port() to respawn a
    /// listener on the same address (SO_REUSEADDR makes this race-free).
    std::uint16_t port = 0;
  };

  ListenerWorkerProcess();  // Options() defaults: ephemeral port
  explicit ListenerWorkerProcess(Options options);
  ~ListenerWorkerProcess() { kill(); }

  ListenerWorkerProcess(const ListenerWorkerProcess&) = delete;
  ListenerWorkerProcess& operator=(const ListenerWorkerProcess&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int pid() const noexcept { return pid_; }

  /// SIGKILL + reap; idempotent. Established connections drop, which is
  /// exactly what the mid-serve kill tests need.
  void kill() noexcept;

 private:
  int pid_ = 0;
  std::uint16_t port_ = 0;
};

}  // namespace ffsm
