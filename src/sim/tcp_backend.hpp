// TcpBackend: a cluster shard served by a worker on another machine.
//
// The multi-host ShardBackend: the wire protocol (sim/messages.hpp)
// spoken over a TCP connection to an `ffsm_shard_worker --listen <port>`.
// Since PR 5 this is the one-endpoint special case of ReplicaBackend
// (sim/replica_backend.hpp), which owns all of the machinery — lazy
// connect with bounded backoff, full config/top handshake replay per
// connection (cold caches, reset counters, bit-identical results),
// in-flight re-submit when a connection drops mid-serve, parent-side
// queueing so nothing is ever lost, and the serve_window backpressure
// bound. With a single endpoint there is nobody to fail over to: once
// serve_retry is exhausted drain() throws with the batch still queued and
// the cluster's failed-drain path takes over — re-queue, retry next
// round, discard_pending as the escape hatch. Deployments that want a
// shard to survive its worker use ReplicaBackend with a seed list.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "sim/replica_backend.hpp"

namespace ffsm {

/// Kept field-for-field in lockstep with ReplicaBackendOptions (minus
/// endpoints/monitor): a knob added to one MUST be added to the other
/// AND to as_replica_options() in tcp_backend.cpp, or TcpBackend
/// silently ignores it. (The struct predates ReplicaBackendOptions and
/// is kept distinct so existing host/port call sites stay source-
/// compatible.)
struct TcpBackendOptions {
  /// Worker address (ffsm_shard_worker --listen on that host).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Wire-safe service options sent at every (re)connect.
  ShardServiceConfig config = {};
  /// Negotiation stance for every connection (see sim/messages.hpp):
  /// kAuto offers the binary framing and falls back to text against a
  /// non-negotiating worker; kText pins the pre-negotiation wire; kBinary
  /// requires the binary framing and fails the connection otherwise.
  WireMode wire = WireMode::kAuto;
  /// Bounded time per connect attempt against a black-holed host.
  std::chrono::milliseconds connect_timeout{2000};
  /// Backoff across connect attempts (worker restarting, port not yet
  /// rebound). Exhausted attempts fail the drain.
  net::RetryPolicy connect_retry = {};
  /// In-flight re-submit: how often a serve batch whose connection dropped
  /// mid-exchange is re-sent (each attempt reconnects first, under
  /// connect_retry) before the drain fails and the cluster re-queues.
  net::RetryPolicy serve_retry = {2, std::chrono::milliseconds(50),
                                  std::chrono::milliseconds(1000), 2};
  /// Maximum request frames in flight per serve exchange — the
  /// backpressure window. A backlog larger than this drains as several
  /// sequential exchanges, each waiting for its responses.
  std::size_t serve_window = 32;
  /// TCP keepalive probing (seconds idle before probing, seconds between
  /// probes, probes before declaring the peer dead). Generation can
  /// legitimately take minutes, so serve reads carry no deadline —
  /// keepalive is what turns a *half-open* connection (peer host died
  /// without FIN/RST) into a bounded-time NetError instead of a drain
  /// wedged forever. idle 0 disables.
  int keepalive_idle_s = 30;
  int keepalive_interval_s = 10;
  int keepalive_probes = 3;
  /// Optional observability context (see ReplicaBackendOptions::obs).
  obs::Obs* obs = nullptr;
};

class TcpBackend final : public ReplicaBackend {
 public:
  explicit TcpBackend(TcpBackendOptions options);
};

/// A locally spawned `ffsm_shard_worker --listen` process — the loopback
/// harness tests, benches and examples use to stand in for a remote host
/// (or for one replica of one). Spawns at construction, parses the
/// worker's `listening <port>` banner (so port 0 = ephemeral works),
/// SIGKILLs + reaps at destruction.
class ListenerWorkerProcess {
 public:
  struct Options {
    /// Worker binary; empty = the SubprocessBackend discovery rules
    /// ($FFSM_SHARD_WORKER, then next to the current executable).
    std::string worker_path;
    /// 0 = ephemeral; pass a previous instance's port() to respawn a
    /// listener on the same address (SO_REUSEADDR makes this race-free).
    std::uint16_t port = 0;
    /// Forwarded as --wire to the worker: kAuto negotiates per connection
    /// (the default), kText pins the pre-negotiation behaviour (how tests
    /// stand in for an old worker binary), kBinary refuses text parents.
    WireMode wire = WireMode::kAuto;
  };

  ListenerWorkerProcess();  // Options() defaults: ephemeral port
  explicit ListenerWorkerProcess(Options options);
  ~ListenerWorkerProcess() { kill(); }

  ListenerWorkerProcess(const ListenerWorkerProcess&) = delete;
  ListenerWorkerProcess& operator=(const ListenerWorkerProcess&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int pid() const noexcept { return pid_; }

  /// SIGKILL + reap; idempotent. Established connections drop, which is
  /// exactly what the mid-serve kill tests need.
  void kill() noexcept;

 private:
  int pid_ = 0;
  std::uint16_t port_ = 0;
};

}  // namespace ffsm
