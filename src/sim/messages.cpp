#include "sim/messages.hpp"

#include <cctype>
#include <sstream>
#include <vector>

#include "util/contracts.hpp"

namespace ffsm {
namespace {

[[noreturn]] void bad(const std::string& what) {
  throw ContractViolation("wire: " + what);
}

/// True for bytes that must be escaped inside a whitespace-delimited token.
bool needs_escape(unsigned char c) {
  return c == '%' || c <= 0x20 || c == 0x7f;
}

char hex_digit(unsigned v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void expect_line_end(std::istringstream& words, const char* what) {
  std::string extra;
  if (words >> extra)
    bad(std::string(what) + ": trailing token '" + extra + "'");
}

template <typename Unsigned>
Unsigned parse_unsigned(std::istringstream& words, const char* what) {
  Unsigned value{};
  if (!(words >> value)) bad(std::string(what) + ": expected a number");
  return value;
}

bool parse_bool(std::istringstream& words, const char* what) {
  std::string token;
  if (!(words >> token) || (token != "0" && token != "1"))
    bad(std::string(what) + ": expected 0 or 1");
  return token == "1";
}

/// Remaining words of a line as a normalized block assignment.
Partition parse_partition(std::istringstream& words, const char* what) {
  std::vector<std::uint32_t> assignment;
  std::uint32_t v = 0;
  while (words >> v) assignment.push_back(v);
  if (!words.eof()) bad(std::string(what) + ": malformed block assignment");
  return Partition(std::move(assignment));
}

void append_partition(std::ostringstream& out, const char* directive,
                      const Partition& p) {
  out << directive;
  for (const std::uint32_t v : p.assignment()) out << ' ' << v;
  out << '\n';
}

}  // namespace

std::string escape_token(std::string_view raw) {
  if (raw.empty()) return "%";
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const auto u = static_cast<unsigned char>(c);
    if (needs_escape(u)) {
      out += '%';
      out += hex_digit(u >> 4);
      out += hex_digit(u & 0xf);
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_token(std::string_view token) {
  if (token.empty()) bad("empty token");
  if (token == "%") return "";
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out += token[i];
      continue;
    }
    if (i + 2 >= token.size() || hex_value(token[i + 1]) < 0 ||
        hex_value(token[i + 2]) < 0)
      bad("malformed %-escape in token '" + std::string(token) + "'");
    out += static_cast<char>(hex_value(token[i + 1]) * 16 +
                             hex_value(token[i + 2]));
    i += 2;
  }
  return out;
}

const char* policy_name(DescentPolicy policy) {
  switch (policy) {
    case DescentPolicy::kFirstFound:
      return "first_found";
    case DescentPolicy::kFewestBlocks:
      return "fewest_blocks";
    case DescentPolicy::kMostBlocks:
      return "most_blocks";
  }
  bad("unknown DescentPolicy");
}

DescentPolicy policy_from_name(std::string_view name) {
  if (name == "first_found") return DescentPolicy::kFirstFound;
  if (name == "fewest_blocks") return DescentPolicy::kFewestBlocks;
  if (name == "most_blocks") return DescentPolicy::kMostBlocks;
  bad("unknown descent policy '" + std::string(name) + "'");
}

const char* cache_policy_name(CacheEvictionPolicy policy) {
  switch (policy) {
    case CacheEvictionPolicy::kLru:
      return "lru";
    case CacheEvictionPolicy::kEpoch:
      return "epoch";
    case CacheEvictionPolicy::kUnbounded:
      return "unbounded";
  }
  bad("unknown CacheEvictionPolicy");
}

CacheEvictionPolicy cache_policy_from_name(std::string_view name) {
  if (name == "lru") return CacheEvictionPolicy::kLru;
  if (name == "epoch") return CacheEvictionPolicy::kEpoch;
  if (name == "unbounded") return CacheEvictionPolicy::kUnbounded;
  bad("unknown cache policy '" + std::string(name) + "'");
}

// ---------------------------------------------------------------- request

std::string encode_request(const WireRequest& request) {
  std::ostringstream out;
  out << "request " << request.ticket << ' ' << escape_token(request.client)
      << '\n';
  out << "f " << request.request.f << '\n';
  out << "policy " << policy_name(request.request.policy) << '\n';
  for (const Partition& p : request.request.originals)
    append_partition(out, "original", p);
  out << "end\n";
  return out.str();
}

WireRequest decode_request(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  WireRequest out;
  bool have_header = false;
  bool have_f = false;
  bool have_policy = false;
  bool ended = false;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string directive;
    if (!(words >> directive)) continue;  // blank line
    if (ended) bad("request: content after 'end'");
    if (directive == "request") {
      if (have_header) bad("request: duplicate header");
      std::string client;
      if (!(words >> out.ticket >> client))
        bad("request: header requires <ticket> <client>");
      expect_line_end(words, "request header");
      out.client = unescape_token(client);
      have_header = true;
      continue;
    }
    if (!have_header) bad("request: expected 'request <ticket> <client>'");
    if (directive == "f") {
      out.request.f = parse_unsigned<std::uint32_t>(words, "request f");
      expect_line_end(words, "request f");
      have_f = true;
    } else if (directive == "policy") {
      std::string name;
      if (!(words >> name)) bad("request: 'policy' requires a name");
      expect_line_end(words, "request policy");
      out.request.policy = policy_from_name(name);
      have_policy = true;
    } else if (directive == "original") {
      out.request.originals.push_back(
          parse_partition(words, "request original"));
    } else if (directive == "end") {
      expect_line_end(words, "request end");
      ended = true;
    } else {
      bad("request: unknown directive '" + directive + "'");
    }
  }
  if (!have_header) bad("request: empty input");
  if (!ended) bad("request: missing 'end'");
  if (!have_f || !have_policy) bad("request: missing 'f' or 'policy'");
  return out;
}

// --------------------------------------------------------------- response

std::string encode_response(const FusionResponse& response) {
  std::ostringstream out;
  out << "response " << response.ticket << ' '
      << escape_token(response.client) << '\n';
  for (const Partition& p : response.result.partitions)
    append_partition(out, "fusion", p);
  const GenerateStats& s = response.result.stats;
  out << "stats " << s.machines_added << ' ' << s.descent_steps << ' '
      << s.candidates_examined << ' ' << s.closures_evaluated << ' '
      << s.cover_cache_hits << ' ' << s.graph_edges_examined << ' '
      << s.dmin_before << ' ' << s.dmin_after << '\n';
  out << "end\n";
  return out.str();
}

FusionResponse decode_response(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  FusionResponse out;
  bool have_header = false;
  bool have_stats = false;
  bool ended = false;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string directive;
    if (!(words >> directive)) continue;
    if (ended) bad("response: content after 'end'");
    if (directive == "response") {
      if (have_header) bad("response: duplicate header");
      std::string client;
      if (!(words >> out.ticket >> client))
        bad("response: header requires <ticket> <client>");
      expect_line_end(words, "response header");
      out.client = unescape_token(client);
      have_header = true;
      continue;
    }
    if (!have_header) bad("response: expected 'response <ticket> <client>'");
    if (directive == "fusion") {
      out.result.partitions.push_back(
          parse_partition(words, "response fusion"));
    } else if (directive == "stats") {
      GenerateStats& s = out.result.stats;
      s.machines_added =
          parse_unsigned<std::uint32_t>(words, "response stats");
      s.descent_steps = parse_unsigned<std::uint32_t>(words, "response stats");
      s.candidates_examined =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.closures_evaluated =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.cover_cache_hits =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.graph_edges_examined =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.dmin_before = parse_unsigned<std::uint32_t>(words, "response stats");
      s.dmin_after = parse_unsigned<std::uint32_t>(words, "response stats");
      expect_line_end(words, "response stats");
      have_stats = true;
    } else if (directive == "end") {
      expect_line_end(words, "response end");
      ended = true;
    } else {
      bad("response: unknown directive '" + directive + "'");
    }
  }
  if (!have_header) bad("response: empty input");
  if (!ended) bad("response: missing 'end'");
  if (!have_stats) bad("response: missing 'stats'");
  return out;
}

// ------------------------------------------------------------------ stats

std::string encode_stats(const ServiceStats& stats) {
  std::ostringstream out;
  out << "stats\n";
  out << "requests_submitted " << stats.requests_submitted << '\n';
  out << "requests_served " << stats.requests_served << '\n';
  out << "batches_served " << stats.batches_served << '\n';
  out << "restarts " << stats.restarts << '\n';
  out << "failovers " << stats.failovers << '\n';
  out << "health_probes_failed " << stats.health_probes_failed << '\n';
  out << "cache_hits " << stats.cache_hits << '\n';
  out << "cache_cold_misses " << stats.cache_cold_misses << '\n';
  out << "cache_eviction_misses " << stats.cache_eviction_misses << '\n';
  out << "cache_evictions " << stats.cache_evictions << '\n';
  out << "cache_entries " << stats.cache_entries << '\n';
  out << "cache_bytes " << stats.cache_bytes << '\n';
  out << "end\n";
  return out.str();
}

ServiceStats decode_stats(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  ServiceStats out;
  bool have_header = false;
  bool ended = false;
  // One bit per counter: a duplicated directive must not mask a missing
  // one (counting lines alone would let "restarts" twice and no
  // "cache_bytes" decode as a silently defaulted stats frame).
  std::uint32_t seen = 0;
  const auto mark = [&](std::uint32_t bit) {
    if ((seen & (1u << bit)) != 0) bad("stats: duplicate counter");
    seen |= 1u << bit;
  };
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string directive;
    if (!(words >> directive)) continue;
    if (ended) bad("stats: content after 'end'");
    if (directive == "stats") {
      if (have_header) bad("stats: duplicate header");
      expect_line_end(words, "stats header");
      have_header = true;
      continue;
    }
    if (!have_header) bad("stats: expected 'stats' first");
    if (directive == "end") {
      expect_line_end(words, "stats end");
      ended = true;
      continue;
    }
    if (directive == "requests_submitted") {
      mark(0);
      out.requests_submitted = parse_unsigned<std::uint64_t>(words, "stats");
    } else if (directive == "requests_served") {
      mark(1);
      out.requests_served = parse_unsigned<std::uint64_t>(words, "stats");
    } else if (directive == "batches_served") {
      mark(2);
      out.batches_served = parse_unsigned<std::uint64_t>(words, "stats");
    } else if (directive == "restarts") {
      mark(3);
      out.restarts = parse_unsigned<std::uint64_t>(words, "stats");
    } else if (directive == "failovers") {
      mark(4);
      out.failovers = parse_unsigned<std::uint64_t>(words, "stats");
    } else if (directive == "health_probes_failed") {
      mark(5);
      out.health_probes_failed =
          parse_unsigned<std::uint64_t>(words, "stats");
    } else if (directive == "cache_hits") {
      mark(6);
      out.cache_hits = parse_unsigned<std::uint64_t>(words, "stats");
    } else if (directive == "cache_cold_misses") {
      mark(7);
      out.cache_cold_misses = parse_unsigned<std::uint64_t>(words, "stats");
    } else if (directive == "cache_eviction_misses") {
      mark(8);
      out.cache_eviction_misses =
          parse_unsigned<std::uint64_t>(words, "stats");
    } else if (directive == "cache_evictions") {
      mark(9);
      out.cache_evictions = parse_unsigned<std::uint64_t>(words, "stats");
    } else if (directive == "cache_entries") {
      mark(10);
      out.cache_entries = parse_unsigned<std::size_t>(words, "stats");
    } else if (directive == "cache_bytes") {
      mark(11);
      out.cache_bytes = parse_unsigned<std::size_t>(words, "stats");
    } else {
      bad("stats: unknown counter '" + directive + "'");
    }
    expect_line_end(words, "stats counter");
  }
  if (!have_header) bad("stats: empty input");
  if (!ended) bad("stats: missing 'end'");
  if (seen != (1u << 12) - 1) bad("stats: missing counter");
  return out;
}

// ----------------------------------------------------------------- config

std::string encode_config(const ShardServiceConfig& config) {
  std::ostringstream out;
  out << "config\n";
  out << "parallel " << (config.parallel ? 1 : 0) << '\n';
  out << "threads " << config.threads << '\n';
  out << "incremental " << (config.incremental ? 1 : 0) << '\n';
  out << "cache_policy " << cache_policy_name(config.cache_config.policy)
      << '\n';
  out << "cache_capacity " << config.cache_config.capacity << '\n';
  out << "end\n";
  return out.str();
}

ShardServiceConfig decode_config(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  ShardServiceConfig out;
  bool have_header = false;
  bool ended = false;
  // One bit per field: duplicates must not mask a missing field (see
  // decode_stats).
  std::uint32_t seen = 0;
  const auto mark = [&](std::uint32_t bit) {
    if ((seen & (1u << bit)) != 0) bad("config: duplicate field");
    seen |= 1u << bit;
  };
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string directive;
    if (!(words >> directive)) continue;
    if (ended) bad("config: content after 'end'");
    if (directive == "config") {
      if (have_header) bad("config: duplicate header");
      expect_line_end(words, "config header");
      have_header = true;
      continue;
    }
    if (!have_header) bad("config: expected 'config' first");
    if (directive == "end") {
      expect_line_end(words, "config end");
      ended = true;
      continue;
    }
    if (directive == "parallel") {
      mark(0);
      out.parallel = parse_bool(words, "config parallel");
    } else if (directive == "threads") {
      mark(1);
      out.threads = parse_unsigned<std::size_t>(words, "config threads");
    } else if (directive == "incremental") {
      mark(2);
      out.incremental = parse_bool(words, "config incremental");
    } else if (directive == "cache_policy") {
      mark(3);
      std::string name;
      if (!(words >> name)) bad("config: 'cache_policy' requires a name");
      out.cache_config.policy = cache_policy_from_name(name);
    } else if (directive == "cache_capacity") {
      mark(4);
      out.cache_config.capacity =
          parse_unsigned<std::size_t>(words, "config cache_capacity");
    } else {
      bad("config: unknown field '" + directive + "'");
    }
    expect_line_end(words, "config field");
  }
  if (!have_header) bad("config: empty input");
  if (!ended) bad("config: missing 'end'");
  if (seen != (1u << 5) - 1) bad("config: missing field");
  return out;
}

}  // namespace ffsm
