#include "sim/messages.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>
#include <functional>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace ffsm {
namespace {

[[noreturn]] void bad(const std::string& what) {
  throw ContractViolation("wire: " + what);
}

/// True for bytes that must be escaped inside a whitespace-delimited token.
bool needs_escape(unsigned char c) {
  return c == '%' || c <= 0x20 || c == 0x7f;
}

char hex_digit(unsigned v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void expect_line_end(std::istringstream& words, const char* what) {
  std::string extra;
  if (words >> extra)
    bad(std::string(what) + ": trailing token '" + extra + "'");
}

template <typename Unsigned>
Unsigned parse_unsigned(std::istringstream& words, const char* what) {
  Unsigned value{};
  if (!(words >> value)) bad(std::string(what) + ": expected a number");
  return value;
}

template <typename Signed>
Signed parse_signed(std::istringstream& words, const char* what) {
  Signed value{};
  if (!(words >> value)) bad(std::string(what) + ": expected a number");
  return value;
}

bool parse_bool(std::istringstream& words, const char* what) {
  std::string token;
  if (!(words >> token) || (token != "0" && token != "1"))
    bad(std::string(what) + ": expected 0 or 1");
  return token == "1";
}

/// Remaining words of a line as a normalized block assignment.
Partition parse_partition(std::istringstream& words, const char* what) {
  std::vector<std::uint32_t> assignment;
  std::uint32_t v = 0;
  while (words >> v) assignment.push_back(v);
  if (!words.eof()) bad(std::string(what) + ": malformed block assignment");
  return Partition(std::move(assignment));
}

void append_partition(std::ostringstream& out, const char* directive,
                      const Partition& p) {
  out << directive;
  for (const std::uint32_t v : p.assignment()) out << ' ' << v;
  out << '\n';
}

}  // namespace

std::string escape_token(std::string_view raw) {
  if (raw.empty()) return "%";
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const auto u = static_cast<unsigned char>(c);
    if (needs_escape(u)) {
      out += '%';
      out += hex_digit(u >> 4);
      out += hex_digit(u & 0xf);
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_token(std::string_view token) {
  if (token.empty()) bad("empty token");
  if (token == "%") return "";
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out += token[i];
      continue;
    }
    if (i + 2 >= token.size() || hex_value(token[i + 1]) < 0 ||
        hex_value(token[i + 2]) < 0)
      bad("malformed %-escape in token '" + std::string(token) + "'");
    out += static_cast<char>(hex_value(token[i + 1]) * 16 +
                             hex_value(token[i + 2]));
    i += 2;
  }
  return out;
}

const char* policy_name(DescentPolicy policy) {
  switch (policy) {
    case DescentPolicy::kFirstFound:
      return "first_found";
    case DescentPolicy::kFewestBlocks:
      return "fewest_blocks";
    case DescentPolicy::kMostBlocks:
      return "most_blocks";
  }
  bad("unknown DescentPolicy");
}

DescentPolicy policy_from_name(std::string_view name) {
  if (name == "first_found") return DescentPolicy::kFirstFound;
  if (name == "fewest_blocks") return DescentPolicy::kFewestBlocks;
  if (name == "most_blocks") return DescentPolicy::kMostBlocks;
  bad("unknown descent policy '" + std::string(name) + "'");
}

const char* cache_policy_name(CacheEvictionPolicy policy) {
  switch (policy) {
    case CacheEvictionPolicy::kLru:
      return "lru";
    case CacheEvictionPolicy::kEpoch:
      return "epoch";
    case CacheEvictionPolicy::kUnbounded:
      return "unbounded";
    case CacheEvictionPolicy::kLfuAdmit:
      return "lfu_admit";
  }
  bad("unknown CacheEvictionPolicy");
}

CacheEvictionPolicy cache_policy_from_name(std::string_view name) {
  if (name == "lru") return CacheEvictionPolicy::kLru;
  if (name == "epoch") return CacheEvictionPolicy::kEpoch;
  if (name == "unbounded") return CacheEvictionPolicy::kUnbounded;
  if (name == "lfu_admit") return CacheEvictionPolicy::kLfuAdmit;
  bad("unknown cache policy '" + std::string(name) + "'");
}

// ---------------------------------------------------------------- request

std::string encode_request(const WireRequest& request) {
  std::ostringstream out;
  out << "request " << request.ticket << ' ' << escape_token(request.client)
      << '\n';
  out << "f " << request.request.f << '\n';
  out << "policy " << policy_name(request.request.policy) << '\n';
  for (const Partition& p : request.request.originals)
    append_partition(out, "original", p);
  out << "end\n";
  return out.str();
}

WireRequest decode_request(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  WireRequest out;
  bool have_header = false;
  bool have_f = false;
  bool have_policy = false;
  bool ended = false;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string directive;
    if (!(words >> directive)) continue;  // blank line
    if (ended) bad("request: content after 'end'");
    if (directive == "request") {
      if (have_header) bad("request: duplicate header");
      std::string client;
      if (!(words >> out.ticket >> client))
        bad("request: header requires <ticket> <client>");
      expect_line_end(words, "request header");
      out.client = unescape_token(client);
      have_header = true;
      continue;
    }
    if (!have_header) bad("request: expected 'request <ticket> <client>'");
    if (directive == "f") {
      out.request.f = parse_unsigned<std::uint32_t>(words, "request f");
      expect_line_end(words, "request f");
      have_f = true;
    } else if (directive == "policy") {
      std::string name;
      if (!(words >> name)) bad("request: 'policy' requires a name");
      expect_line_end(words, "request policy");
      out.request.policy = policy_from_name(name);
      have_policy = true;
    } else if (directive == "original") {
      out.request.originals.push_back(
          parse_partition(words, "request original"));
    } else if (directive == "end") {
      expect_line_end(words, "request end");
      ended = true;
    } else {
      bad("request: unknown directive '" + directive + "'");
    }
  }
  if (!have_header) bad("request: empty input");
  if (!ended) bad("request: missing 'end'");
  if (!have_f || !have_policy) bad("request: missing 'f' or 'policy'");
  return out;
}

// --------------------------------------------------------------- response

std::string encode_response(const FusionResponse& response) {
  std::ostringstream out;
  out << "response " << response.ticket << ' '
      << escape_token(response.client) << '\n';
  for (const Partition& p : response.result.partitions)
    append_partition(out, "fusion", p);
  const GenerateStats& s = response.result.stats;
  out << "stats " << s.machines_added << ' ' << s.descent_steps << ' '
      << s.candidates_examined << ' ' << s.closures_evaluated << ' '
      << s.cover_cache_hits << ' ' << s.graph_edges_examined << ' '
      << s.speculative_covers_launched << ' ' << s.speculation_hits << ' '
      << s.speculation_wasted_closures << ' ' << s.dmin_before << ' '
      << s.dmin_after << '\n';
  out << "end\n";
  return out.str();
}

FusionResponse decode_response(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  FusionResponse out;
  bool have_header = false;
  bool have_stats = false;
  bool ended = false;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string directive;
    if (!(words >> directive)) continue;
    if (ended) bad("response: content after 'end'");
    if (directive == "response") {
      if (have_header) bad("response: duplicate header");
      std::string client;
      if (!(words >> out.ticket >> client))
        bad("response: header requires <ticket> <client>");
      expect_line_end(words, "response header");
      out.client = unescape_token(client);
      have_header = true;
      continue;
    }
    if (!have_header) bad("response: expected 'response <ticket> <client>'");
    if (directive == "fusion") {
      out.result.partitions.push_back(
          parse_partition(words, "response fusion"));
    } else if (directive == "stats") {
      GenerateStats& s = out.result.stats;
      s.machines_added =
          parse_unsigned<std::uint32_t>(words, "response stats");
      s.descent_steps = parse_unsigned<std::uint32_t>(words, "response stats");
      s.candidates_examined =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.closures_evaluated =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.cover_cache_hits =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.graph_edges_examined =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.speculative_covers_launched =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.speculation_hits =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.speculation_wasted_closures =
          parse_unsigned<std::uint64_t>(words, "response stats");
      s.dmin_before = parse_unsigned<std::uint32_t>(words, "response stats");
      s.dmin_after = parse_unsigned<std::uint32_t>(words, "response stats");
      expect_line_end(words, "response stats");
      have_stats = true;
    } else if (directive == "end") {
      expect_line_end(words, "response end");
      ended = true;
    } else {
      bad("response: unknown directive '" + directive + "'");
    }
  }
  if (!have_header) bad("response: empty input");
  if (!ended) bad("response: missing 'end'");
  if (!have_stats) bad("response: missing 'stats'");
  return out;
}

// ------------------------------------------------------------------ stats

std::string encode_stats(const ServiceStats& stats) {
  std::ostringstream out;
  out << "stats\n";
#define FFSM_STATS_ENCODE_LINE(name, agg) \
  out << #name " " << stats.name << '\n';
  FFSM_SERVICE_STATS_COUNTERS(FFSM_STATS_ENCODE_LINE)
#undef FFSM_STATS_ENCODE_LINE
  out << "end\n";
  return out.str();
}

ServiceStats decode_stats(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  ServiceStats out;
  bool have_header = false;
  bool ended = false;
  // One bit per counter: a duplicated directive must not mask a missing
  // one (counting lines alone would let "restarts" twice and no
  // "cache_bytes" decode as a silently defaulted stats frame).
  std::uint32_t seen = 0;
  const auto mark = [&](std::uint32_t bit) {
    if ((seen & (1u << bit)) != 0) bad("stats: duplicate counter");
    seen |= 1u << bit;
  };
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string directive;
    if (!(words >> directive)) continue;
    if (ended) bad("stats: content after 'end'");
    if (directive == "stats") {
      if (have_header) bad("stats: duplicate header");
      expect_line_end(words, "stats header");
      have_header = true;
      continue;
    }
    if (!have_header) bad("stats: expected 'stats' first");
    if (directive == "end") {
      expect_line_end(words, "stats end");
      ended = true;
      continue;
    }
    bool matched = false;
    std::uint32_t bit = 0;
#define FFSM_STATS_DECODE_LINE(name, agg)               \
  if (!matched && directive == #name) {                 \
    mark(bit);                                          \
    out.name = static_cast<decltype(out.name)>(         \
        parse_unsigned<std::uint64_t>(words, "stats")); \
    matched = true;                                     \
  }                                                     \
  ++bit;
    FFSM_SERVICE_STATS_COUNTERS(FFSM_STATS_DECODE_LINE)
#undef FFSM_STATS_DECODE_LINE
    if (!matched) bad("stats: unknown counter '" + directive + "'");
    expect_line_end(words, "stats counter");
  }
  if (!have_header) bad("stats: empty input");
  if (!ended) bad("stats: missing 'end'");
  if (seen != (1u << kServiceStatsCounters) - 1) bad("stats: missing counter");
  return out;
}

// ----------------------------------------------------------------- config

std::string encode_config(const ShardServiceConfig& config) {
  std::ostringstream out;
  out << "config\n";
  out << "parallel " << (config.parallel ? 1 : 0) << '\n';
  out << "threads " << config.threads << '\n';
  out << "incremental " << (config.incremental ? 1 : 0) << '\n';
  out << "cache_policy " << cache_policy_name(config.cache_config.policy)
      << '\n';
  out << "cache_capacity " << config.cache_config.capacity << '\n';
  out << "speculation_lookahead " << config.speculation_lookahead << '\n';
  out << "end\n";
  return out.str();
}

ShardServiceConfig decode_config(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  ShardServiceConfig out;
  bool have_header = false;
  bool ended = false;
  // One bit per field: duplicates must not mask a missing field (see
  // decode_stats).
  std::uint32_t seen = 0;
  const auto mark = [&](std::uint32_t bit) {
    if ((seen & (1u << bit)) != 0) bad("config: duplicate field");
    seen |= 1u << bit;
  };
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string directive;
    if (!(words >> directive)) continue;
    if (ended) bad("config: content after 'end'");
    if (directive == "config") {
      if (have_header) bad("config: duplicate header");
      expect_line_end(words, "config header");
      have_header = true;
      continue;
    }
    if (!have_header) bad("config: expected 'config' first");
    if (directive == "end") {
      expect_line_end(words, "config end");
      ended = true;
      continue;
    }
    if (directive == "parallel") {
      mark(0);
      out.parallel = parse_bool(words, "config parallel");
    } else if (directive == "threads") {
      mark(1);
      out.threads = parse_unsigned<std::size_t>(words, "config threads");
    } else if (directive == "incremental") {
      mark(2);
      out.incremental = parse_bool(words, "config incremental");
    } else if (directive == "cache_policy") {
      mark(3);
      std::string name;
      if (!(words >> name)) bad("config: 'cache_policy' requires a name");
      out.cache_config.policy = cache_policy_from_name(name);
    } else if (directive == "cache_capacity") {
      mark(4);
      out.cache_config.capacity =
          parse_unsigned<std::size_t>(words, "config cache_capacity");
    } else if (directive == "speculation_lookahead") {
      mark(5);
      out.speculation_lookahead =
          parse_unsigned<std::uint32_t>(words, "config speculation_lookahead");
    } else {
      bad("config: unknown field '" + directive + "'");
    }
    expect_line_end(words, "config field");
  }
  if (!have_header) bad("config: empty input");
  if (!ended) bad("config: missing 'end'");
  if (seen != (1u << 6) - 1) bad("config: missing field");
  return out;
}

// ------------------------------------------------------------- wire modes

const char* wire_mode_name(WireMode mode) {
  switch (mode) {
    case WireMode::kAuto:
      return "auto";
    case WireMode::kText:
      return "text";
    case WireMode::kBinary:
      return "bin";
  }
  bad("unknown WireMode");
}

bool parse_wire_mode(std::string_view name, WireMode& out) {
  if (name == "auto") {
    out = WireMode::kAuto;
  } else if (name == "text") {
    out = WireMode::kText;
  } else if (name == "bin") {
    out = WireMode::kBinary;
  } else {
    return false;
  }
  return true;
}

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kOk:
      return "ok";
    case FrameType::kError:
      return "error";
    case FrameType::kConfig:
      return "config";
    case FrameType::kTop:
      return "top";
    case FrameType::kServe:
      return "serve";
    case FrameType::kRequest:
      return "request";
    case FrameType::kServing:
      return "serving";
    case FrameType::kResponse:
      return "response";
    case FrameType::kDone:
      return "done";
    case FrameType::kStatsQuery:
      return "stats-query";
    case FrameType::kStats:
      return "stats";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kBye:
      return "bye";
    case FrameType::kCacheWarm:
      return "cachewarm";
    case FrameType::kObs:
      return "obs";
  }
  bad("unknown FrameType");
}

// -------------------------------------------------------------- WireArena

char* WireArena::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;  // distinct non-null pointers, simpler marks
  while (current_ < chunks_.size()) {
    if (sizes_[current_] - used_ >= bytes) {
      char* out = chunks_[current_].get() + used_;
      used_ += bytes;
      return out;
    }
    ++current_;
    used_ = 0;
  }
  const std::size_t capacity = std::max(chunk_size_, bytes);
  chunks_.push_back(std::make_unique<char[]>(capacity));
  sizes_.push_back(capacity);
  current_ = chunks_.size() - 1;
  used_ = bytes;
  return chunks_[current_].get();
}

std::size_t WireArena::capacity() const noexcept {
  std::size_t total = 0;
  for (const std::size_t size : sizes_) total += size;
  return total;
}

// ------------------------------------------------------------- text codec

namespace {

/// Pulls the next input line; false only at a clean end of input (which
/// mid-frame means truncation). Channel-backed sources never return false
/// — they throw NetError via expect_line instead.
using LineSource = std::function<bool(std::string&)>;

bool blank_line(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

std::string next_or_truncated(const LineSource& next, const char* what) {
  std::string line;
  if (!next(line)) bad(std::string(what) + ": truncated frame");
  return line;
}

/// Lines up to and including the lone `end` terminator, newlines restored
/// — the body collector behind every multi-line text frame.
std::string collect_text_frame(std::string first, const LineSource& next,
                               const char* what) {
  std::string frame = std::move(first);
  frame += '\n';
  for (;;) {
    const std::string line = next_or_truncated(next, what);
    frame += line;
    frame += '\n';
    if (line == "end") return frame;
  }
}

/// One text frame starting at `first` (a non-blank command/reply line),
/// pulling body lines from `next` as the type requires.
Frame parse_text_frame(const std::string& first, const LineSource& next) {
  std::istringstream words(first);
  std::string directive;
  words >> directive;  // caller guarantees a non-blank line
  Frame frame;
  const auto line_end = [&](const char* what) { expect_line_end(words, what); };
  if (directive == "ok") {
    frame.type = FrameType::kOk;
    line_end("ok");
  } else if (directive == "error") {
    frame.type = FrameType::kError;
    std::string token;
    if (words >> token) {
      // Lenient like the historical error_detail: a garbled escape in an
      // error message must not mask the error itself.
      try {
        frame.text = unescape_token(token);
      } catch (const ContractViolation&) {
        frame.text = token;
      }
    }
    line_end("error");
  } else if (directive == "done") {
    frame.type = FrameType::kDone;
    line_end("done");
  } else if (directive == "ping") {
    frame.type = FrameType::kPing;
    line_end("ping");
  } else if (directive == "pong") {
    frame.type = FrameType::kPong;
    line_end("pong");
  } else if (directive == "shutdown") {
    frame.type = FrameType::kShutdown;
    line_end("shutdown");
  } else if (directive == "bye") {
    frame.type = FrameType::kBye;
    line_end("bye");
  } else if (directive == "serving") {
    frame.type = FrameType::kServing;
    frame.count = parse_unsigned<std::uint64_t>(words, "serving");
    line_end("serving");
  } else if (directive == "serve") {
    frame.type = FrameType::kServe;
    std::string token;
    if (!(words >> token)) bad("'serve' requires <key> <count> <parent>");
    frame.key = unescape_token(token);
    frame.count = parse_unsigned<std::uint64_t>(words, "serve count");
    frame.parent = parse_unsigned<std::uint64_t>(words, "serve parent");
    line_end("serve");
  } else if (directive == "cachewarm") {
    frame.type = FrameType::kCacheWarm;
    std::string token;
    if (!(words >> token)) bad("'cachewarm' requires <key> <count>");
    frame.key = unescape_token(token);
    frame.count = parse_unsigned<std::uint64_t>(words, "cachewarm count");
    line_end("cachewarm");
    // Body: `entry` opens one cache entry (its key partition), `cover`
    // lines add that entry's cover partitions, a lone `end` closes the
    // frame. A query carries zero entries.
    for (;;) {
      const std::string line = next_or_truncated(next, "cachewarm");
      std::istringstream body(line);
      std::string what;
      if (!(body >> what)) continue;  // blank line
      if (what == "end") {
        expect_line_end(body, "cachewarm end");
        break;
      }
      if (what == "entry") {
        WarmCacheEntry entry;
        entry.key = parse_partition(body, "cachewarm entry");
        frame.entries.push_back(std::move(entry));
      } else if (what == "cover") {
        if (frame.entries.empty())
          bad("cachewarm: 'cover' before any 'entry'");
        frame.entries.back().cover.push_back(
            parse_partition(body, "cachewarm cover"));
      } else {
        bad("cachewarm: unknown directive '" + what + "'");
      }
    }
  } else if (directive == "obs") {
    frame.type = FrameType::kObs;
    line_end("obs");
    // Body: `counter`, `gauge`, `hist` and `span` lines in any order, a
    // lone `end` closes the frame. An empty body is the query form.
    for (;;) {
      const std::string line = next_or_truncated(next, "obs");
      std::istringstream body(line);
      std::string what;
      if (!(body >> what)) continue;  // blank line
      if (what == "end") {
        expect_line_end(body, "obs end");
        break;
      }
      if (what == "counter") {
        std::string token;
        if (!(body >> token)) bad("obs: 'counter' requires <name> <value>");
        const std::uint64_t value =
            parse_unsigned<std::uint64_t>(body, "obs counter");
        expect_line_end(body, "obs counter");
        if (!frame.obs.counters.emplace(unescape_token(token), value).second)
          bad("obs: duplicate counter");
      } else if (what == "gauge") {
        std::string token;
        if (!(body >> token)) bad("obs: 'gauge' requires <name> <value>");
        const std::int64_t value =
            parse_signed<std::int64_t>(body, "obs gauge");
        expect_line_end(body, "obs gauge");
        if (!frame.obs.gauges.emplace(unescape_token(token), value).second)
          bad("obs: duplicate gauge");
      } else if (what == "hist") {
        std::string token;
        if (!(body >> token))
          bad("obs: 'hist' requires <name> <sum> <n> [<bucket> <count>]...");
        obs::HistogramSnapshot h;
        h.sum = parse_unsigned<std::uint64_t>(body, "obs hist sum");
        const std::uint32_t nonzero =
            parse_unsigned<std::uint32_t>(body, "obs hist bucket count");
        if (nonzero > obs::kHistogramBuckets)
          bad("obs: histogram bucket count out of range");
        for (std::uint32_t i = 0; i < nonzero; ++i) {
          const std::uint32_t idx =
              parse_unsigned<std::uint32_t>(body, "obs hist bucket");
          if (idx >= obs::kHistogramBuckets)
            bad("obs: histogram bucket index out of range");
          const std::uint64_t count =
              parse_unsigned<std::uint64_t>(body, "obs hist bucket");
          if (count == 0 || h.buckets[idx] != 0)
            bad("obs: malformed histogram bucket");
          h.buckets[idx] = count;
        }
        expect_line_end(body, "obs hist");
        if (!frame.obs.histograms.emplace(unescape_token(token), h).second)
          bad("obs: duplicate histogram");
      } else if (what == "span") {
        std::string name;
        std::string source;
        std::string shard;
        std::string top;
        if (!(body >> name >> source >> shard >> top))
          bad("obs: 'span' requires <name> <source> <shard> <top> + fields");
        obs::TraceSpan s;
        s.name = unescape_token(name);
        s.source = unescape_token(source);
        s.shard = unescape_token(shard);
        s.top = unescape_token(top);
        s.start_us = parse_unsigned<std::uint64_t>(body, "obs span");
        s.duration_us = parse_unsigned<std::uint64_t>(body, "obs span");
        s.id = parse_unsigned<std::uint64_t>(body, "obs span");
        s.parent = parse_unsigned<std::uint64_t>(body, "obs span");
        s.exchange = parse_unsigned<std::uint64_t>(body, "obs span");
        s.instant = parse_bool(body, "obs span instant");
        expect_line_end(body, "obs span");
        frame.obs.spans.push_back(std::move(s));
      } else {
        bad("obs: unknown directive '" + what + "'");
      }
    }
  } else if (directive == "stats") {
    std::string token;
    if (words >> token) {
      // `stats <key>` is the query; a bare `stats` opens the counters
      // frame (the reply).
      frame.type = FrameType::kStatsQuery;
      frame.key = unescape_token(token);
      line_end("stats query");
    } else {
      frame.type = FrameType::kStats;
      frame.stats = decode_stats(collect_text_frame(first, next, "stats"));
    }
  } else if (directive == "config") {
    line_end("config");
    frame.type = FrameType::kConfig;
    frame.config = decode_config(collect_text_frame(first, next, "config"));
  } else if (directive == "top") {
    frame.type = FrameType::kTop;
    std::string token;
    if (!(words >> token)) bad("'top' requires a key");
    frame.key = unescape_token(token);
    line_end("top");
    // The machine text is its own frame: first line through lone `end`.
    frame.text = collect_text_frame(
        next_or_truncated(next, "machine text"), next, "machine text");
  } else if (directive == "request") {
    frame.type = FrameType::kRequest;
    frame.request =
        decode_request(collect_text_frame(first, next, "request"));
  } else if (directive == "response") {
    frame.type = FrameType::kResponse;
    frame.response =
        decode_response(collect_text_frame(first, next, "response"));
  } else {
    bad("unknown command '" + directive + "'");
  }
  return frame;
}

class TextWireCodec final : public WireCodec {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "text"; }
  [[nodiscard]] bool multiplexed() const noexcept override { return false; }

  void encode(const Frame& frame, std::string& out) const override {
    // Exchange ids exist only in the binary framing; silently dropping one
    // here would desynchronize a multiplexing caller.
    if (frame.exchange != 0) bad("text wire cannot carry exchange ids");
    switch (frame.type) {
      case FrameType::kOk:
        out += "ok\n";
        return;
      case FrameType::kError:
        out += "error ";
        out += escape_token(frame.text);
        out += '\n';
        return;
      case FrameType::kConfig:
        out += encode_config(frame.config);
        return;
      case FrameType::kTop:
        out += "top ";
        out += escape_token(frame.key);
        out += '\n';
        out += frame.text;  // self-terminating machine-text frame
        return;
      case FrameType::kServe:
        out += "serve ";
        out += escape_token(frame.key);
        out += ' ';
        out += std::to_string(frame.count);
        out += ' ';
        out += std::to_string(frame.parent);
        out += '\n';
        return;
      case FrameType::kRequest:
        out += encode_request(frame.request);
        return;
      case FrameType::kServing:
        out += "serving ";
        out += std::to_string(frame.count);
        out += '\n';
        return;
      case FrameType::kResponse:
        out += encode_response(frame.response);
        return;
      case FrameType::kDone:
        out += "done\n";
        return;
      case FrameType::kStatsQuery:
        out += "stats ";
        out += escape_token(frame.key);
        out += '\n';
        return;
      case FrameType::kStats:
        out += encode_stats(frame.stats);
        return;
      case FrameType::kPing:
        out += "ping\n";
        return;
      case FrameType::kPong:
        out += "pong\n";
        return;
      case FrameType::kShutdown:
        out += "shutdown\n";
        return;
      case FrameType::kBye:
        out += "bye\n";
        return;
      case FrameType::kCacheWarm: {
        out += "cachewarm ";
        out += escape_token(frame.key);
        out += ' ';
        out += std::to_string(frame.count);
        out += '\n';
        std::ostringstream body;
        for (const WarmCacheEntry& entry : frame.entries) {
          append_partition(body, "entry", entry.key);
          for (const Partition& p : entry.cover)
            append_partition(body, "cover", p);
        }
        out += body.str();
        out += "end\n";
        return;
      }
      case FrameType::kObs: {
        out += "obs\n";
        std::ostringstream body;
        for (const auto& [name, value] : frame.obs.counters)
          body << "counter " << escape_token(name) << ' ' << value << '\n';
        for (const auto& [name, value] : frame.obs.gauges)
          body << "gauge " << escape_token(name) << ' ' << value << '\n';
        for (const auto& [name, h] : frame.obs.histograms) {
          std::uint32_t nonzero = 0;
          for (const std::uint64_t c : h.buckets) nonzero += c != 0 ? 1 : 0;
          body << "hist " << escape_token(name) << ' ' << h.sum << ' '
               << nonzero;
          for (std::size_t i = 0; i < h.buckets.size(); ++i)
            if (h.buckets[i] != 0) body << ' ' << i << ' ' << h.buckets[i];
          body << '\n';
        }
        for (const obs::TraceSpan& s : frame.obs.spans)
          body << "span " << escape_token(s.name) << ' '
               << escape_token(s.source) << ' ' << escape_token(s.shard)
               << ' ' << escape_token(s.top) << ' ' << s.start_us << ' '
               << s.duration_us << ' ' << s.id << ' ' << s.parent << ' '
               << s.exchange << ' ' << (s.instant ? 1 : 0) << '\n';
        out += body.str();
        out += "end\n";
        return;
      }
    }
    bad("unknown FrameType");
  }

  [[nodiscard]] Frame decode(std::string_view bytes) override {
    std::string_view rest = bytes;
    const auto next = [&rest](std::string& line) {
      if (rest.empty()) return false;
      const auto pos = rest.find('\n');
      if (pos == std::string_view::npos)
        bad("truncated frame (unterminated line)");
      line.assign(rest.substr(0, pos));
      rest.remove_prefix(pos + 1);
      return true;
    };
    std::string first;
    do {
      if (!next(first)) bad("empty input");
    } while (blank_line(first));
    Frame frame = parse_text_frame(first, next);
    std::string extra;
    while (!rest.empty())
      if (next(extra) && !blank_line(extra))
        bad("trailing bytes after frame");
    return frame;
  }

  [[nodiscard]] Frame expect(net::LineChannel& channel,
                             const char* context) override {
    std::string first;
    do {
      first = channel.expect_line(context);
    } while (blank_line(first));
    return parse_text_frame(first, [&](std::string& line) {
      line = channel.expect_line(context);
      return true;
    });
  }

  [[nodiscard]] std::optional<Frame> read_command(
      net::LineChannel& channel,
      std::chrono::milliseconds frame_budget) override {
    std::string first;
    do {
      if (!channel.read_line(first)) return std::nullopt;
    } while (blank_line(first));
    // The command line may block forever (an idle parent is fine); once a
    // frame has begun, the rest shares one bounded budget.
    const net::Deadline deadline =
        std::chrono::steady_clock::now() + frame_budget;
    return parse_text_frame(first, [&](std::string& line) {
      line = channel.expect_line("command frame", deadline);
      return true;
    });
  }
};

// ----------------------------------------------------------- binary codec
//
// Frame = 16-byte little-endian header + payload:
//
//   u32 payload_len | u8 type | u8 0 | u16 0 | u64 exchange
//
// Reserved header bytes must be zero. Payload layouts (all integers
// little-endian, `str` = u32 length + raw bytes, `partition` = u32 count +
// count x u32 block ids):
//
//   kError       str detail
//   kConfig      u8 parallel, u64 threads, u8 incremental,
//                u8 cache_policy, u64 cache_capacity,
//                u32 speculation_lookahead
//   kTop         str key, str machine_text
//   kServe       str key, u64 count, u64 parent (parent-side span id the
//                worker parents its spans under; 0 = unlinked)
//   kServing     u64 count
//   kStatsQuery  str key
//   kStats       kServiceStatsCounters x u64
//                (FFSM_SERVICE_STATS_COUNTERS row order)
//   kCacheWarm   str key, u64 count, u32 n,
//                n x (partition key, u32 m, m x partition)
//   kObs         u32 nc, nc x (str name, u64 value),
//                u32 ng, ng x (str name, u64 value-as-two's-complement),
//                u32 nh, nh x (str name, u64 sum, u32 nb,
//                              nb x (u8 bucket, u64 count)),
//                u32 ns, ns x (str name, str source, str shard, str top,
//                              u64 start_us, u64 duration_us, u64 id,
//                              u64 parent, u64 exchange, u8 instant)
//   kRequest     u64 ticket, str client, u32 f, u8 policy,
//                u32 n, n x partition
//   kResponse    u64 ticket, str client, u32 n, n x partition,
//                u32 machines_added, u32 descent_steps,
//                u64 candidates_examined, u64 closures_evaluated,
//                u64 cover_cache_hits, u64 graph_edges_examined,
//                u64 speculative_covers_launched, u64 speculation_hits,
//                u64 speculation_wasted_closures,
//                u32 dmin_before, u32 dmin_after
//   (kOk, kDone, kPing, kPong, kShutdown, kBye: empty payload)

constexpr std::size_t kBinHeaderSize = 16;
/// Machines and batches are at most megabytes; anything close to this is
/// a corrupted length, rejected before it can size an allocation.
constexpr std::uint32_t kMaxBinPayload = 256u << 20;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xff));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_str(std::string& out, std::string_view s) {
  if (s.size() > kMaxBinPayload) bad("oversized string field");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

void put_partition(std::string& out, const Partition& p) {
  const auto& assignment = p.assignment();
  put_u32(out, static_cast<std::uint32_t>(assignment.size()));
  for (const std::uint32_t v : assignment) put_u32(out, v);
}

std::uint8_t policy_wire(DescentPolicy policy) {
  switch (policy) {
    case DescentPolicy::kFirstFound:
      return 0;
    case DescentPolicy::kFewestBlocks:
      return 1;
    case DescentPolicy::kMostBlocks:
      return 2;
  }
  bad("unknown DescentPolicy");
}

DescentPolicy policy_from_wire(std::uint8_t v) {
  switch (v) {
    case 0:
      return DescentPolicy::kFirstFound;
    case 1:
      return DescentPolicy::kFewestBlocks;
    case 2:
      return DescentPolicy::kMostBlocks;
    default:
      bad("unknown descent policy byte");
  }
}

std::uint8_t cache_policy_wire(CacheEvictionPolicy policy) {
  switch (policy) {
    case CacheEvictionPolicy::kLru:
      return 0;
    case CacheEvictionPolicy::kEpoch:
      return 1;
    case CacheEvictionPolicy::kUnbounded:
      return 2;
    case CacheEvictionPolicy::kLfuAdmit:
      return 3;
  }
  bad("unknown CacheEvictionPolicy");
}

CacheEvictionPolicy cache_policy_from_wire(std::uint8_t v) {
  switch (v) {
    case 0:
      return CacheEvictionPolicy::kLru;
    case 1:
      return CacheEvictionPolicy::kEpoch;
    case 2:
      return CacheEvictionPolicy::kUnbounded;
    case 3:
      return CacheEvictionPolicy::kLfuAdmit;
    default:
      bad("unknown cache policy byte");
  }
}

/// Bounds-checked little-endian cursor over one binary payload.
class BinReader {
 public:
  BinReader(const char* data, std::size_t size)
      : p_(reinterpret_cast<const unsigned char*>(data)), end_(p_ + size) {}

  [[nodiscard]] bool done() const noexcept { return p_ == end_; }

  void require(std::size_t bytes) const {
    if (static_cast<std::size_t>(end_ - p_) < bytes)
      bad("truncated payload");
  }

  std::uint8_t u8() {
    require(1);
    return *p_++;
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p_[i]} << (8 * i);
    p_ += 4;
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p_[i]} << (8 * i);
    p_ += 8;
    return v;
  }

  std::string_view str() {
    const std::uint32_t size = u32();
    require(size);
    const auto* at = reinterpret_cast<const char*>(p_);
    p_ += size;
    return {at, size};
  }

  Partition partition() {
    const std::uint32_t count = u32();
    require(std::size_t{count} * 4);
    std::vector<std::uint32_t> assignment;
    assignment.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) assignment.push_back(u32());
    return Partition(std::move(assignment));
  }

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) bad("expected a 0/1 byte");
    return v == 1;
  }

 private:
  const unsigned char* p_;
  const unsigned char* end_;
};

void encode_binary_payload(const Frame& frame, std::string& out) {
  switch (frame.type) {
    case FrameType::kOk:
    case FrameType::kDone:
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kShutdown:
    case FrameType::kBye:
      return;
    case FrameType::kError:
      put_str(out, frame.text);
      return;
    case FrameType::kConfig:
      put_u8(out, frame.config.parallel ? 1 : 0);
      put_u64(out, frame.config.threads);
      put_u8(out, frame.config.incremental ? 1 : 0);
      put_u8(out, cache_policy_wire(frame.config.cache_config.policy));
      put_u64(out, frame.config.cache_config.capacity);
      put_u32(out, frame.config.speculation_lookahead);
      return;
    case FrameType::kTop:
      put_str(out, frame.key);
      put_str(out, frame.text);
      return;
    case FrameType::kServe:
      put_str(out, frame.key);
      put_u64(out, frame.count);
      put_u64(out, frame.parent);
      return;
    case FrameType::kServing:
      put_u64(out, frame.count);
      return;
    case FrameType::kStatsQuery:
      put_str(out, frame.key);
      return;
    case FrameType::kStats:
#define FFSM_STATS_PUT(name, agg) put_u64(out, frame.stats.name);
      FFSM_SERVICE_STATS_COUNTERS(FFSM_STATS_PUT)
#undef FFSM_STATS_PUT
      return;
    case FrameType::kCacheWarm:
      put_str(out, frame.key);
      put_u64(out, frame.count);
      put_u32(out, static_cast<std::uint32_t>(frame.entries.size()));
      for (const WarmCacheEntry& entry : frame.entries) {
        put_partition(out, entry.key);
        put_u32(out, static_cast<std::uint32_t>(entry.cover.size()));
        for (const Partition& p : entry.cover) put_partition(out, p);
      }
      return;
    case FrameType::kObs: {
      const obs::ObsSnapshot& o = frame.obs;
      put_u32(out, static_cast<std::uint32_t>(o.counters.size()));
      for (const auto& [name, value] : o.counters) {
        put_str(out, name);
        put_u64(out, value);
      }
      put_u32(out, static_cast<std::uint32_t>(o.gauges.size()));
      for (const auto& [name, value] : o.gauges) {
        put_str(out, name);
        put_u64(out, static_cast<std::uint64_t>(value));
      }
      put_u32(out, static_cast<std::uint32_t>(o.histograms.size()));
      for (const auto& [name, h] : o.histograms) {
        put_str(out, name);
        put_u64(out, h.sum);
        std::uint32_t nonzero = 0;
        for (const std::uint64_t c : h.buckets) nonzero += c != 0 ? 1 : 0;
        put_u32(out, nonzero);
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
          if (h.buckets[i] == 0) continue;
          put_u8(out, static_cast<std::uint8_t>(i));
          put_u64(out, h.buckets[i]);
        }
      }
      put_u32(out, static_cast<std::uint32_t>(o.spans.size()));
      for (const obs::TraceSpan& s : o.spans) {
        put_str(out, s.name);
        put_str(out, s.source);
        put_str(out, s.shard);
        put_str(out, s.top);
        put_u64(out, s.start_us);
        put_u64(out, s.duration_us);
        put_u64(out, s.id);
        put_u64(out, s.parent);
        put_u64(out, s.exchange);
        put_u8(out, s.instant ? 1 : 0);
      }
      return;
    }
    case FrameType::kRequest: {
      const WireRequest& r = frame.request;
      put_u64(out, r.ticket);
      put_str(out, r.client);
      put_u32(out, r.request.f);
      put_u8(out, policy_wire(r.request.policy));
      put_u32(out, static_cast<std::uint32_t>(r.request.originals.size()));
      for (const Partition& p : r.request.originals) put_partition(out, p);
      return;
    }
    case FrameType::kResponse: {
      const FusionResponse& r = frame.response;
      put_u64(out, r.ticket);
      put_str(out, r.client);
      put_u32(out, static_cast<std::uint32_t>(r.result.partitions.size()));
      for (const Partition& p : r.result.partitions) put_partition(out, p);
      const GenerateStats& s = r.result.stats;
      put_u32(out, s.machines_added);
      put_u32(out, s.descent_steps);
      put_u64(out, s.candidates_examined);
      put_u64(out, s.closures_evaluated);
      put_u64(out, s.cover_cache_hits);
      put_u64(out, s.graph_edges_examined);
      put_u64(out, s.speculative_covers_launched);
      put_u64(out, s.speculation_hits);
      put_u64(out, s.speculation_wasted_closures);
      put_u32(out, s.dmin_before);
      put_u32(out, s.dmin_after);
      return;
    }
  }
  bad("unknown FrameType");
}

Frame decode_binary_payload(FrameType type, BinReader& in) {
  Frame frame;
  frame.type = type;
  switch (type) {
    case FrameType::kOk:
    case FrameType::kDone:
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kShutdown:
    case FrameType::kBye:
      break;
    case FrameType::kError:
      frame.text = in.str();
      break;
    case FrameType::kConfig:
      frame.config.parallel = in.boolean();
      frame.config.threads = in.u64();
      frame.config.incremental = in.boolean();
      frame.config.cache_config.policy = cache_policy_from_wire(in.u8());
      frame.config.cache_config.capacity = in.u64();
      frame.config.speculation_lookahead = in.u32();
      break;
    case FrameType::kTop:
      frame.key = in.str();
      frame.text = in.str();
      break;
    case FrameType::kServe:
      frame.key = in.str();
      frame.count = in.u64();
      frame.parent = in.u64();
      break;
    case FrameType::kServing:
      frame.count = in.u64();
      break;
    case FrameType::kStatsQuery:
      frame.key = in.str();
      break;
    case FrameType::kStats:
#define FFSM_STATS_GET(name, agg) \
  frame.stats.name = static_cast<decltype(frame.stats.name)>(in.u64());
      FFSM_SERVICE_STATS_COUNTERS(FFSM_STATS_GET)
#undef FFSM_STATS_GET
      break;
    case FrameType::kCacheWarm: {
      frame.key = in.str();
      frame.count = in.u64();
      const std::uint32_t entries = in.u32();
      frame.entries.reserve(std::min<std::size_t>(entries, 4096));
      for (std::uint32_t i = 0; i < entries; ++i) {
        WarmCacheEntry entry;
        entry.key = in.partition();
        const std::uint32_t covers = in.u32();
        entry.cover.reserve(std::min<std::size_t>(covers, 4096));
        for (std::uint32_t j = 0; j < covers; ++j)
          entry.cover.push_back(in.partition());
        frame.entries.push_back(std::move(entry));
      }
      break;
    }
    case FrameType::kObs: {
      const std::uint32_t counters = in.u32();
      for (std::uint32_t i = 0; i < counters; ++i) {
        std::string name(in.str());
        const std::uint64_t value = in.u64();
        if (!frame.obs.counters.emplace(std::move(name), value).second)
          bad("obs: duplicate counter");
      }
      const std::uint32_t gauges = in.u32();
      for (std::uint32_t i = 0; i < gauges; ++i) {
        std::string name(in.str());
        const auto value = static_cast<std::int64_t>(in.u64());
        if (!frame.obs.gauges.emplace(std::move(name), value).second)
          bad("obs: duplicate gauge");
      }
      const std::uint32_t hists = in.u32();
      for (std::uint32_t i = 0; i < hists; ++i) {
        std::string name(in.str());
        obs::HistogramSnapshot h;
        h.sum = in.u64();
        const std::uint32_t nonzero = in.u32();
        if (nonzero > obs::kHistogramBuckets)
          bad("obs: histogram bucket count out of range");
        for (std::uint32_t j = 0; j < nonzero; ++j) {
          const std::uint8_t idx = in.u8();
          if (idx >= obs::kHistogramBuckets)
            bad("obs: histogram bucket index out of range");
          const std::uint64_t count = in.u64();
          if (count == 0 || h.buckets[idx] != 0)
            bad("obs: malformed histogram bucket");
          h.buckets[idx] = count;
        }
        if (!frame.obs.histograms.emplace(std::move(name), h).second)
          bad("obs: duplicate histogram");
      }
      const std::uint32_t spans = in.u32();
      frame.obs.spans.reserve(std::min<std::size_t>(spans, 4096));
      for (std::uint32_t i = 0; i < spans; ++i) {
        obs::TraceSpan s;
        s.name = in.str();
        s.source = in.str();
        s.shard = in.str();
        s.top = in.str();
        s.start_us = in.u64();
        s.duration_us = in.u64();
        s.id = in.u64();
        s.parent = in.u64();
        s.exchange = in.u64();
        s.instant = in.boolean();
        frame.obs.spans.push_back(std::move(s));
      }
      break;
    }
    case FrameType::kRequest: {
      frame.request.ticket = in.u64();
      frame.request.client = in.str();
      frame.request.request.f = in.u32();
      frame.request.request.policy = policy_from_wire(in.u8());
      const std::uint32_t originals = in.u32();
      frame.request.request.originals.reserve(
          std::min<std::size_t>(originals, 4096));
      for (std::uint32_t i = 0; i < originals; ++i)
        frame.request.request.originals.push_back(in.partition());
      break;
    }
    case FrameType::kResponse: {
      frame.response.ticket = in.u64();
      frame.response.client = in.str();
      const std::uint32_t partitions = in.u32();
      frame.response.result.partitions.reserve(
          std::min<std::size_t>(partitions, 4096));
      for (std::uint32_t i = 0; i < partitions; ++i)
        frame.response.result.partitions.push_back(in.partition());
      GenerateStats& s = frame.response.result.stats;
      s.machines_added = in.u32();
      s.descent_steps = in.u32();
      s.candidates_examined = in.u64();
      s.closures_evaluated = in.u64();
      s.cover_cache_hits = in.u64();
      s.graph_edges_examined = in.u64();
      s.speculative_covers_launched = in.u64();
      s.speculation_hits = in.u64();
      s.speculation_wasted_closures = in.u64();
      s.dmin_before = in.u32();
      s.dmin_after = in.u32();
      break;
    }
    default:
      bad("unknown frame type byte");
  }
  if (!in.done()) bad("trailing payload bytes");
  return frame;
}

struct BinHeader {
  std::uint32_t payload_len = 0;
  FrameType type = FrameType::kOk;
  std::uint64_t exchange = 0;
};

BinHeader parse_binary_header(const char* data) {
  const auto* h = reinterpret_cast<const unsigned char*>(data);
  BinHeader out;
  for (int i = 0; i < 4; ++i)
    out.payload_len |= std::uint32_t{h[i]} << (8 * i);
  const std::uint8_t type_byte = h[4];
  if (h[5] != 0 || h[6] != 0 || h[7] != 0)
    bad("reserved header bytes must be zero");
  for (int i = 0; i < 8; ++i)
    out.exchange |= std::uint64_t{h[8 + i]} << (8 * i);
  if (type_byte < static_cast<std::uint8_t>(FrameType::kOk) ||
      type_byte > static_cast<std::uint8_t>(FrameType::kObs))
    bad("unknown frame type byte");
  if (out.payload_len > kMaxBinPayload) bad("oversized frame");
  out.type = static_cast<FrameType>(type_byte);
  return out;
}

class BinaryWireCodec final : public WireCodec {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "bin"; }
  [[nodiscard]] bool multiplexed() const noexcept override { return true; }

  void encode(const Frame& frame, std::string& out) const override {
    const std::size_t header_at = out.size();
    out.append(kBinHeaderSize, '\0');
    encode_binary_payload(frame, out);
    const std::size_t payload = out.size() - header_at - kBinHeaderSize;
    if (payload > kMaxBinPayload) bad("oversized frame");
    std::string header;
    header.reserve(kBinHeaderSize);
    put_u32(header, static_cast<std::uint32_t>(payload));
    put_u8(header, static_cast<std::uint8_t>(frame.type));
    put_u8(header, 0);
    put_u16(header, 0);
    put_u64(header, frame.exchange);
    out.replace(header_at, kBinHeaderSize, header);
  }

  [[nodiscard]] Frame decode(std::string_view bytes) override {
    if (bytes.size() < kBinHeaderSize) bad("truncated header");
    const BinHeader header = parse_binary_header(bytes.data());
    if (bytes.size() - kBinHeaderSize < header.payload_len)
      bad("truncated payload");
    if (bytes.size() - kBinHeaderSize > header.payload_len)
      bad("trailing bytes after frame");
    BinReader in(bytes.data() + kBinHeaderSize, header.payload_len);
    Frame frame = decode_binary_payload(header.type, in);
    frame.exchange = header.exchange;
    return frame;
  }

  [[nodiscard]] Frame expect(net::LineChannel& channel,
                             const char* context) override {
    char header_bytes[kBinHeaderSize];
    if (!channel.read_exact(header_bytes, kBinHeaderSize))
      throw net::NetError(std::string("peer closed the stream during ") +
                          context);
    return read_payload(channel, header_bytes, nullptr);
  }

  [[nodiscard]] std::optional<Frame> read_command(
      net::LineChannel& channel,
      std::chrono::milliseconds frame_budget) override {
    char header_bytes[kBinHeaderSize];
    // First byte may block forever (idle parent); the rest of the frame
    // shares one bounded budget.
    if (!channel.read_exact(header_bytes, 1)) return std::nullopt;
    const net::Deadline deadline =
        std::chrono::steady_clock::now() + frame_budget;
    if (!channel.read_exact(header_bytes + 1, kBinHeaderSize - 1, deadline))
      throw net::NetError("peer closed the stream mid-header");
    return read_payload(channel, header_bytes, &deadline);
  }

 private:
  Frame read_payload(net::LineChannel& channel, const char* header_bytes,
                     const net::Deadline* deadline) {
    const BinHeader header = parse_binary_header(header_bytes);
    // Stage the payload in the arena: mark/restore means steady-state
    // reads allocate no per-frame buffers (strings and partitions copied
    // out of the staging block are the only allocations left).
    const WireArena::Mark mark = arena_.mark();
    char* payload = arena_.allocate(header.payload_len);
    try {
      const bool got =
          header.payload_len == 0 ||
          (deadline != nullptr
               ? channel.read_exact(payload, header.payload_len, *deadline)
               : channel.read_exact(payload, header.payload_len));
      if (!got)
        throw net::NetError("peer closed the stream mid-frame");
      BinReader in(payload, header.payload_len);
      Frame frame = decode_binary_payload(header.type, in);
      frame.exchange = header.exchange;
      arena_.restore(mark);
      return frame;
    } catch (...) {
      arena_.restore(mark);
      throw;
    }
  }

  WireArena arena_;
};

}  // namespace

std::unique_ptr<WireCodec> make_wire_codec(bool binary) {
  if (binary) return std::make_unique<BinaryWireCodec>();
  return std::make_unique<TextWireCodec>();
}

// ------------------------------------------------------------ negotiation

namespace {

// Protocol version carried by the hello line. Bumped whenever a negotiated
// payload changes shape in either encoding, so mixed-build peers fail at
// the handshake instead of mid-stream:
//   1 — initial negotiated wire (binary framing + exchange multiplexing).
//   2 — stats frame grew the speculation counters, config frame grew
//       speculation_lookahead (text directives and binary payload bytes).
//   3 — stats frame grew the cache admission counters, the cachewarm
//       frame (warm cache handoff) was added, and the lfu_admit cache
//       policy joined the config vocabulary.
//   4 — the obs frame (kObs: counters, latency histograms and trace spans)
//       joined both codecs.
//   5 — the serve frame grew the parent span id (cross-process trace
//       stitching) and the obs frame grew the gauge list (windowed
//       telemetry), in both encodings.
constexpr std::string_view kHelloVersion = "5";

}  // namespace

std::string client_hello(WireMode mode) {
  FFSM_EXPECTS(mode != WireMode::kText);
  std::string line = "hello ";
  line += kHelloVersion;
  line += mode == WireMode::kBinary ? " bin\n" : " bin,text\n";
  return line;
}

bool parse_client_hello(std::string_view line, bool& offers_binary,
                        bool& offers_text) {
  std::istringstream words{std::string(line)};
  std::string directive;
  if (!(words >> directive) || directive != "hello") return false;
  std::string version;
  std::string offers;
  if (!(words >> version >> offers))
    bad("hello requires <version> <offers>");
  expect_line_end(words, "hello");
  if (version != kHelloVersion)
    bad("unsupported hello version '" + version + "'");
  offers_binary = false;
  offers_text = false;
  std::size_t start = 0;
  while (start <= offers.size()) {
    const std::size_t comma = offers.find(',', start);
    const std::string_view offer =
        std::string_view(offers).substr(start, comma == std::string::npos
                                                   ? std::string::npos
                                                   : comma - start);
    if (offer == "bin") offers_binary = true;
    if (offer == "text") offers_text = true;
    // Unknown offers are ignored: a future codec degrades to what both
    // sides share.
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

std::string worker_hello(bool binary) {
  std::string line = "hello ";
  line += kHelloVersion;
  line += binary ? " bin\n" : " text\n";
  return line;
}

std::unique_ptr<WireCodec> negotiate_wire(net::LineChannel& channel,
                                          WireMode mode) {
  if (mode == WireMode::kText) return make_wire_codec(false);
  channel.send(client_hello(mode));
  const std::string reply = channel.expect_line("wire negotiation");
  const std::string accept_bin = "hello " + std::string(kHelloVersion) +
                                 " bin";
  const std::string accept_text = "hello " + std::string(kHelloVersion) +
                                  " text";
  if (reply == accept_bin) return make_wire_codec(true);
  if (reply == accept_text && mode == WireMode::kAuto)
    return make_wire_codec(false);
  if (reply.rfind("error", 0) == 0) {
    // A worker that speaks negotiation but a different protocol version
    // answered `error ...unsupported hello version...` (and closed). Never
    // fall back to text here: the text payloads changed shape across
    // versions too, so a downgrade would fail mid-stream instead. (The
    // match must be this specific — a pre-negotiation text worker echoes
    // the unknown directive, so its reply also contains "hello".)
    if (reply.find("unsupported%20hello%20version") != std::string::npos)
      bad("peer speaks an incompatible wire protocol version: " + reply);
    // A worker that predates negotiation entirely answered `error unknown
    // command...` and keeps listening — the stream is still in sync.
    if (mode == WireMode::kBinary)
      bad("peer cannot speak the binary wire (--wire=bin): " + reply);
    return make_wire_codec(false);
  }
  bad("unexpected negotiation reply '" + reply + "'");
}

}  // namespace ffsm
