// Pluggable shard backends for the FusionCluster.
//
// A cluster shard is no longer a set of concrete FusionService objects —
// it is a ShardBackend: per-top serving queues behind a message boundary.
// The cluster routes and re-queues; the backend owns the machines, the
// queues accepted from the cluster, and the closure caches. Two backends
// ship today:
//
//   InProcessBackend  — the pre-refactor behaviour, bit-identical: one
//                       FusionService per registered top in this address
//                       space (the default).
//   SubprocessBackend — one worker process per shard speaking the wire
//                       protocol (sim/messages.hpp) over a socketpair;
//                       see sim/subprocess_backend.hpp.
//
// Contract shared by all backends: submit() queues, drain(key) serves
// everything queued for one top and returns responses in ticket order; a
// failed drain leaves the requests queued inside the backend and throws,
// so the cluster's existing failed-drain path (record the failing top,
// retry next round, discard_pending as the escape hatch) works unchanged
// whether the failure was a malformed batch or a dead worker process.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/server.hpp"

namespace ffsm {

class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Registers `top` under `key` (the key must be new to this backend).
  /// Serialized by the cluster's shard lock; not called during drains.
  virtual void add_top(const std::string& key, const Dfsm& top) = 0;

  /// Precondition check for submit: every partition in `request` must
  /// partition the states of `key`'s top. Throws ContractViolation
  /// otherwise. Runs caller-side even for out-of-process backends (the
  /// caller registered the top, so it knows the machine) — a malformed
  /// request is rejected before it ever crosses the wire.
  virtual void validate(const std::string& key,
                        const FusionRequest& request) const = 0;

  /// Queues a request for `key`; returns the backend ticket identifying
  /// the eventual response. Precondition: validate(key, request).
  virtual std::uint64_t submit(const std::string& key, std::string client,
                               FusionRequest request) = 0;

  /// Queued, not yet served requests for `key`; thread-safe.
  [[nodiscard]] virtual std::size_t pending(const std::string& key) const = 0;

  /// Drops every queued request for `key`, returning how many.
  virtual std::size_t discard_pending(const std::string& key) = 0;

  /// Serves everything queued for `key` as one batch; responses in ticket
  /// order. On failure the requests stay queued in the backend and the
  /// error propagates — the cluster re-runs them on its next drain.
  virtual std::vector<FusionResponse> drain(const std::string& key) = 0;

  /// Lifetime counters of `key`'s serving state. For an out-of-process
  /// backend these are the worker's counters: a restarted worker restarts
  /// them, exactly like any real process-level metric.
  [[nodiscard]] virtual ServiceStats stats(const std::string& key) const = 0;

  /// This backend's contribution to the cluster-wide observability view.
  /// Out-of-process backends query their worker over the wire (kObs) and
  /// return its counters, histograms and trace spans; a dead or pre-obs
  /// worker yields an empty snapshot. The in-process backend records
  /// directly into the cluster's own Obs, so the base default — empty — is
  /// correct for it (no double counting).
  [[nodiscard]] virtual obs::ObsSnapshot obs_snapshot() { return {}; }

  /// Releases backend resources (terminates worker processes, flushes
  /// queues are NOT dropped — only serving capacity goes away). Idempotent;
  /// also invoked by destruction.
  virtual void shutdown() {}
};

/// Shared parent-side half of every wire-protocol backend (subprocess,
/// TCP): the registered tops with their self-contained machine texts, the
/// per-top request queues that make worker loss non-lossy, ticket
/// assignment, and caller-side validation. Subclasses own the transport —
/// drain/stats/shutdown — plus one hook: register_added_top_locked, called
/// under the lock by add_top so a live transport learns new tops
/// immediately (and can veto them before the entry commits).
class QueuedWireBackend : public ShardBackend {
 public:
  void add_top(const std::string& key, const Dfsm& top) final;
  void validate(const std::string& key,
                const FusionRequest& request) const final;
  std::uint64_t submit(const std::string& key, std::string client,
                       FusionRequest request) final;
  [[nodiscard]] std::size_t pending(const std::string& key) const final;
  std::size_t discard_pending(const std::string& key) final;

 protected:
  struct TopState {
    std::string machine_text;    // self-contained to_text, for re-register
    std::uint32_t top_size = 0;  // states, for caller-side validate
    std::vector<WireRequest> queue;  // accepted, not yet served
    /// Warm cache snapshot captured (best-effort) after the last
    /// successful drain, replayed alongside the config/top handshake when
    /// the transport is re-established — a respawned worker or failover
    /// target starts with the predecessor's hot set instead of stone-cold.
    std::vector<WarmCacheEntry> warm;
  };

  /// Entries captured per top by the post-drain warm snapshot (and the
  /// most a handshake replays). Covers are a few hundred bytes each, so
  /// the snapshot stays well under a single network read even at the
  /// default cache capacity.
  static constexpr std::uint64_t kWarmSnapshotEntries = 64;

  [[nodiscard]] TopState& top_of(const std::string& key);
  [[nodiscard]] const TopState& top_of(const std::string& key) const;

  /// Called by add_top with mutex_ held, after the entry was recorded. A
  /// throw rolls the registration back (the cluster rolls its own back
  /// too). Typical implementation: if the transport is live, send the
  /// `top` frame and expect "ok"; if not, do nothing — the (re)connect
  /// handshake registers every recorded top anyway.
  virtual void register_added_top_locked(const std::string& key) = 0;

  /// Decodes the detail token of an `error <msg>` reply line (the
  /// directive already consumed from `words`).
  [[nodiscard]] static std::string error_detail(std::istringstream& words);

  /// Human-readable tail for a reply frame that should have been `ok` (or
  /// another expected type): the error detail for kError, the frame type
  /// name otherwise.
  [[nodiscard]] static std::string describe_reply(const Frame& reply);

  /// Serializes the wire conversation and guards tops_/top_order_/queues.
  mutable std::mutex mutex_;
  std::unordered_map<std::string, TopState> tops_;
  std::vector<std::string> top_order_;  // registration order for replays
  std::uint64_t next_ticket_ = 1;
};

/// The default backend: the pre-refactor in-address-space behaviour, one
/// FusionService per registered top. Bit-identical responses and stats to
/// the pre-backend FusionCluster.
class InProcessBackend final : public ShardBackend {
 public:
  explicit InProcessBackend(FusionServiceOptions options);

  void add_top(const std::string& key, const Dfsm& top) override;
  void validate(const std::string& key,
                const FusionRequest& request) const override;
  std::uint64_t submit(const std::string& key, std::string client,
                       FusionRequest request) override;
  [[nodiscard]] std::size_t pending(const std::string& key) const override;
  std::size_t discard_pending(const std::string& key) override;
  std::vector<FusionResponse> drain(const std::string& key) override;
  [[nodiscard]] ServiceStats stats(const std::string& key) const override;

  /// The concrete service hosting `key` — diagnostics hatch for callers
  /// that know they run in-process (see FusionCluster::service).
  [[nodiscard]] const FusionService& service(const std::string& key) const;

 private:
  [[nodiscard]] FusionService& service_of(const std::string& key) const;

  FusionServiceOptions options_;
  // Guards the services_ topology only; FusionService is itself
  // thread-safe, and map references are rehash-stable (services are never
  // removed), so calls proceed outside this lock.
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<FusionService>> services_;
};

}  // namespace ffsm
