// ReplicaBackend: one cluster shard served through a replica set of
// interchangeable workers.
//
// The paper's deployment story — f spare resources standing by so any f
// crashed machines recover without loss — applied to the serving layer
// itself. Where TcpBackend pins a shard to one static endpoint (a dead
// worker stalls the shard until that exact address returns), a
// ReplicaBackend owns an *ordered seed list* of worker endpoints, all
// replicas of the same shard worker, and serves every exchange through
// the current primary. A NetError mid-exchange drops the connection and
// the in-flight retry reconnects to the best replica reachable, replaying
// the full config/top handshake — a listen-mode worker starts every
// connection with clean state, so a fresh replica is bit-identical by
// construction (caches never change results). The handshake also replays
// the warm cache snapshot captured after the last successful drain
// (kCacheWarm), so a failover target serves its first drain with the
// previous primary's hot set resident instead of stone-cold — results
// stay bit-identical either way. Queueing stays parent-side
// (QueuedWireBackend): the batch is re-submitted to the survivor and the
// queue cleared only once every response arrived, so failover is
// lossless. With every replica down, drain() throws with the batch still
// queued and the cluster's failed-drain path takes over; any replica
// coming back recovers the backlog.
//
// Every connection negotiates its encoding (sim/messages.hpp): by default
// the backend offers the binary framing and falls back to text against
// old workers. The connection itself is a WireConversation — on the
// binary wire drains for different tops run as interleaved exchanges on
// the one connection (wire I/O happens *outside* the backend lock), while
// the text wire serializes exchanges exactly as before.
//
// Endpoint selection consults an optional net::HealthMonitor probing the
// seed list in the background: the connect scan tries replicas the
// monitor believes alive first (priority order within each verdict) but
// never skips one — a stale verdict only reorders attempts, it cannot
// cause unavailability. While serving through a lower-priority replica,
// a higher-priority one probing back up triggers *fail-back* on the next
// drain: the connection moves only when no exchange is active on the
// wire, so nothing is dropped.
//
// TcpBackend (sim/tcp_backend.hpp) is the one-endpoint special case and
// derives from this class.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/health.hpp"
#include "net/line_channel.hpp"
#include "net/retry.hpp"
#include "sim/backend.hpp"
#include "sim/wire_conversation.hpp"

namespace ffsm {

struct ReplicaBackendOptions {
  /// Worker replicas of this shard, priority order: the backend serves
  /// through the earliest reachable one and fails back toward the front
  /// as replicas revive. At least one; ports nonzero.
  std::vector<net::Endpoint> endpoints;
  /// Wire-safe service options sent at every (re)connect.
  ShardServiceConfig config = {};
  /// Negotiation stance for every connection (see sim/messages.hpp):
  /// kAuto offers the binary framing and falls back to text against a
  /// non-negotiating worker; kText pins the pre-negotiation wire; kBinary
  /// requires the binary framing and fails the connection otherwise.
  WireMode wire = WireMode::kAuto;
  /// Bounded time per connect attempt against a black-holed host.
  std::chrono::milliseconds connect_timeout{2000};
  /// Backoff across connect rounds; every round scans the whole replica
  /// set once. Exhausted rounds fail the drain.
  net::RetryPolicy connect_retry = {};
  /// In-flight re-submit: how often a serve batch whose connection died
  /// mid-exchange is re-sent (each attempt reconnects first — possibly to
  /// a different replica) before the drain fails and the cluster
  /// re-queues.
  net::RetryPolicy serve_retry = {2, std::chrono::milliseconds(50),
                                  std::chrono::milliseconds(1000), 2};
  /// Maximum request frames in flight per serve exchange — the
  /// backpressure window (see TcpBackendOptions::serve_window).
  std::size_t serve_window = 32;
  /// TCP keepalive probing for the serve connection (reads there carry no
  /// deadline — generation can run long); idle 0 disables.
  int keepalive_idle_s = 30;
  int keepalive_interval_s = 10;
  int keepalive_probes = 3;
  /// Liveness oracle for the seed list; the backend watch()es its
  /// endpoints at construction. Optional — without one, failover still
  /// works (pure priority-order scanning) but fail-back happens only on
  /// reconnect. Shared: one monitor typically probes every shard's
  /// replicas.
  std::shared_ptr<net::HealthMonitor> monitor;
  /// Optional observability context (nullptr = uninstrumented): wire
  /// encode/decode/round-trip timing on every connection (see
  /// WireConversation), a `replica.failover` instant event whenever the
  /// serving endpoint moves to a different replica, and obs_snapshot()
  /// pulling the live replica's own snapshot over the wire (kObs).
  obs::Obs* obs = nullptr;
};

class ReplicaBackend : public QueuedWireBackend {
 public:
  explicit ReplicaBackend(ReplicaBackendOptions options);
  ~ReplicaBackend() override;

  ReplicaBackend(const ReplicaBackend&) = delete;
  ReplicaBackend& operator=(const ReplicaBackend&) = delete;

  // add_top / validate / submit / pending / discard_pending: the shared
  // parent-side queueing of QueuedWireBackend.
  std::vector<FusionResponse> drain(const std::string& key) override;
  /// Worker counters for `key` from the live replica (per-connection on
  /// the worker side); all-zero when disconnected. restarts, failovers
  /// and health_probes_failed are filled parent-side — the replica that
  /// answers cannot know how often it was replaced.
  [[nodiscard]] ServiceStats stats(const std::string& key) const override;
  /// The live replica's observability snapshot via a kObs exchange
  /// (per-connection on the worker side, like stats()); empty when
  /// disconnected or the query fails.
  [[nodiscard]] obs::ObsSnapshot obs_snapshot() override;
  /// Graceful goodbye (`shutdown` + close). Replicas keep listening;
  /// queued requests stay queued and the next drain() reconnects.
  void shutdown() override;

  /// Successful connections so far — 1 after the first drain, +1 per
  /// reconnect (same or different replica). restarts = connects() - 1.
  [[nodiscard]] std::uint64_t connects() const;
  /// Whether a connection is currently open (tests probe recovery).
  [[nodiscard]] bool connected() const;
  /// Times the serving endpoint moved to a *different* replica.
  [[nodiscard]] std::uint64_t failovers() const;
  /// Seed-list index of the live (or most recent) connection's replica.
  [[nodiscard]] std::size_t current_replica() const;
  /// Negotiated encoding of the live connection ("bin" or "text"); empty
  /// while disconnected.
  [[nodiscard]] std::string wire_name() const;

 private:
  /// A live connection learns new tops immediately; otherwise the next
  /// reconnect handshake registers them with the rest.
  void register_added_top_locked(const std::string& key) override;

  /// Fail-back check + connect + handshake if disconnected, retrying per
  /// connect_retry with the backoff sleeps OUTSIDE the mutex. Throws
  /// NetError once every round failed on every replica.
  void ensure_connected();
  /// Drops a connection to a lower-priority replica when the monitor
  /// reports an earlier one back up. Only fires while no exchange is
  /// active on the wire — parent-side queueing makes the drop lossless.
  void maybe_fail_back_locked();
  /// One scan over the replica set in scan_order(); first successful
  /// connect+handshake wins. Locks per endpoint (one lock hold <= one
  /// connect_timeout, never the whole scan). Throws the last NetError if
  /// every replica failed; protocol rejections (ContractViolation)
  /// propagate immediately — a worker that *answers wrongly* is not
  /// routed around.
  void connect_any();
  /// Connect + negotiate + config/top handshake against one replica; on
  /// success installs the fresh WireConversation.
  void connect_endpoint_locked(std::size_t replica);
  /// Replica indices in attempt order: monitor-alive first (priority
  /// order within each verdict: kUp, kUnknown, kDown), every replica
  /// present exactly once. Without a monitor: plain priority order.
  /// Reads only immutable options and the monitor — no backend lock.
  [[nodiscard]] std::vector<std::size_t> scan_order() const;
  void drop_connection_locked() noexcept;
  /// Serializes drains per top — the cluster already guarantees one drain
  /// per top at a time, the gate makes it a local invariant. Gates are
  /// created lazily and never removed, so the returned reference is
  /// stable.
  [[nodiscard]] std::mutex& serve_gate(const std::string& key);
  /// Ships `batch` as serve_window-sized exchanges on `conversation`;
  /// responses in batch (= ticket) order. Runs WITHOUT the backend lock —
  /// on the binary wire other tops' drains interleave on the same
  /// connection while this one waits. NetError => the conversation is
  /// already poisoned (the caller drops and retries).
  std::vector<FusionResponse> serve_exchange(
      const std::shared_ptr<WireConversation>& conversation,
      const std::string& key, const std::vector<WireRequest>& batch);
  /// Best-effort kCacheWarm export query after a successful drain: stores
  /// the replica's hottest cache entries in the top's warm snapshot, to be
  /// replayed by the next connect handshake (failover or fail-back).
  /// Failures are swallowed — the drain already completed.
  void capture_warm_snapshot(
      const std::shared_ptr<WireConversation>& conversation,
      const std::string& key);
  /// Parent-side counters the remote cannot know, onto `stats`.
  void fill_parent_counters_locked(ServiceStats& stats) const;

  ReplicaBackendOptions options_;
  std::shared_ptr<WireConversation> conversation_;
  /// One gate per top (lazily created; pointers keep them stable under
  /// rehash). Locked for a whole drain, which outlives mutex_ holds.
  std::unordered_map<std::string, std::unique_ptr<std::mutex>> serve_gates_;
  std::uint64_t connects_ = 0;
  std::uint64_t failovers_ = 0;
  std::size_t current_ = 0;  // endpoint index of the live/last connection
};

}  // namespace ffsm
