#include "sim/event_source.hpp"

// Header-only implementations; this translation unit anchors the vtable of
// EventSource so the library owns its key function.

namespace ffsm {

// (intentionally empty)

}  // namespace ffsm
