// A multi-tenant fusion cluster: N FusionService shards keyed by top
// machine.
//
// One FusionService owns one top machine (the expensive reachable cross
// product) and serves every client asking about that top. The cluster is
// the routing layer above it: top machines are registered under string
// keys, each key is consistently assigned to one of N shards (FNV-1a hash
// of the key, so the assignment is stable across runs and independent of
// registration order), and every shard hosts the services of the keys that
// map to it. drain() fans the shard backlogs out across the shared
// ThreadPool, so independent tops make progress in parallel while all
// requests for one top still share that service's bounded closure cache.
//
// Failure model: the cluster validates only that a request names a
// registered top. Request contents (partition sizes) are validated by the
// serving shard at drain time — where the top machine lives — so a
// malformed request fails its shard's drain and is *re-queued at the
// cluster*, never silently lost; DrainReport says which tops failed and
// discard_pending() evicts a poisoned backlog. A shard whose batched
// generation itself throws keeps the drained requests queued inside its
// FusionService (see FusionService::drain) and the cluster retries them on
// the next drain.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/server.hpp"

namespace ffsm {

struct FusionClusterOptions {
  /// Number of shards (must be >= 1). Tops hash onto shards; several tops
  /// can share a shard.
  std::size_t shards = 4;
  /// Drain shards in parallel on the pool (each shard's inner batch
  /// composes via ThreadPool re-entrancy).
  bool parallel = true;
  ThreadPool* pool = nullptr;
  /// Per-request engine mode (see GenerateOptions::incremental).
  bool incremental = true;
  /// Bound + eviction policy for every shard service's persistent closure
  /// cache; total resident cache memory is O(tops * capacity) entries.
  LowerCoverCacheConfig cache_config = {};
};

class FusionCluster {
 public:
  /// A served request. Tickets are cluster-global and strictly increasing
  /// in submission order.
  struct Response {
    std::uint64_t ticket = 0;
    std::string top;
    std::string client;
    FusionResult result;
  };

  /// Outcome of one drain() round.
  struct DrainReport {
    /// Served requests in cluster-ticket order.
    std::vector<Response> responses;
    /// Requests put back (cluster queue or shard service queue) because
    /// their shard failed to serve them this round.
    std::uint64_t requeued = 0;
    /// Top keys whose shard reported a failure this round (deduplicated,
    /// sorted).
    std::vector<std::string> failed_tops;
  };

  /// Aggregate of the cluster's own counters and every shard service's
  /// Stats (cache counters summed across services).
  struct Stats {
    std::uint64_t requests_submitted = 0;
    std::uint64_t requests_served = 0;
    std::uint64_t requests_requeued = 0;
    std::uint64_t drains = 0;
    std::uint64_t drain_failures = 0;
    std::uint64_t shard_batches_served = 0;
    std::size_t shards = 0;
    std::size_t tops = 0;
    std::size_t pending = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_cold_misses = 0;
    std::uint64_t cache_eviction_misses = 0;
    std::uint64_t cache_evictions = 0;
    std::size_t cache_entries = 0;
    std::size_t cache_bytes = 0;
  };

  explicit FusionCluster(FusionClusterOptions options = {});

  /// Registers `top` under `key`, creating its FusionService on the shard
  /// `shard_of(key)`. The key must be new. Thread-safe.
  FusionService& add_top(const std::string& key, Dfsm top);

  [[nodiscard]] bool has_top(const std::string& key) const;
  [[nodiscard]] std::size_t top_count() const;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Consistent shard assignment: FNV-1a(key) % shard_count(), stable
  /// across runs, platforms and registration order.
  [[nodiscard]] std::size_t shard_of(const std::string& key) const noexcept;

  /// The shard service hosting `key` (must be registered).
  [[nodiscard]] const FusionService& service(const std::string& key) const;

  /// Queues a request for the given top; thread-safe. Only registration of
  /// the top is checked here — request contents are validated by the
  /// serving shard at drain time (see the failure model above). Returns
  /// the cluster ticket identifying the response.
  std::uint64_t submit(const std::string& top_key, std::string client,
                       FusionRequest request);

  /// Queued-but-unserved requests, cluster queues plus shard service
  /// backlogs; thread-safe.
  [[nodiscard]] std::size_t pending() const;

  /// Serves every queued request, fanning shards out across the pool.
  /// Requests from a failed shard drain are re-queued and retried on the
  /// next call; see DrainReport. Concurrent drains are serialized.
  DrainReport drain();

  /// Drops every unserved request for `top_key` — cluster-queued requests
  /// and any backlog a failed drain left re-queued inside the shard's
  /// service — returning how many were discarded. The escape hatch for a
  /// backlog the shard keeps failing on. Serialized with drain().
  std::size_t discard_pending(const std::string& top_key);

  [[nodiscard]] Stats stats() const;

 private:
  struct Item {
    std::uint64_t ticket;
    std::string top;
    std::string client;
    FusionRequest request;
  };

  struct ServiceEntry {
    std::unique_ptr<FusionService> service;
    /// Service ticket -> cluster ticket for requests the service has
    /// accepted but not yet served (survives failed drains). Touched only
    /// by the serialized drain path, one worker per shard.
    std::unordered_map<std::uint64_t, std::uint64_t> inflight;
  };

  struct Shard {
    mutable std::mutex mutex;  // guards services (topology) and queue
    std::unordered_map<std::string, ServiceEntry> services;
    std::vector<Item> queue;
  };

  /// Serves one shard: feed its queue into the per-top services, drain
  /// each service with a backlog, map service tickets back to cluster
  /// tickets. Failures are captured in the out-params, never thrown.
  void serve_shard(Shard& shard, std::vector<Response>& responses,
                   std::uint64_t& requeued,
                   std::vector<std::string>& failed_tops);

  FusionClusterOptions options_;
  std::vector<Shard> shards_;
  std::mutex drain_mutex_;  // serializes drain() rounds
  std::atomic<std::uint64_t> next_ticket_{1};
  std::atomic<std::uint64_t> requests_submitted_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_requeued_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<std::uint64_t> drain_failures_{0};
};

}  // namespace ffsm
