// A multi-tenant fusion cluster: N shard backends keyed by top machine.
//
// One serving backend owns the tops of one shard and serves every client
// asking about them. The cluster is the routing layer above: top machines
// are registered under string keys, each key is consistently assigned to
// one of N shards (FNV-1a hash of the key, so the assignment is stable
// across runs and independent of registration order), and every shard's
// ShardBackend hosts the tops that map to it. drain() fans the shard
// backlogs out across the shared ThreadPool, so independent tops make
// progress in parallel while all requests for one top still share that
// top's bounded closure cache (wherever it lives — this address space or a
// worker process).
//
// The backend behind a shard is pluggable (sim/backend.hpp): the default
// InProcessBackend reproduces the pre-backend behaviour bit-identically;
// SubprocessBackend (sim/subprocess_backend.hpp) moves each shard into its
// own OS process behind the wire protocol. The cluster's routing, ticket
// bookkeeping and failure handling are backend-agnostic, and every backend
// must serve bit-identical responses for the same request stream.
//
// Failure model: the cluster validates only that a request names a
// registered top. Request contents (partition sizes) are validated by the
// serving shard at drain time — a malformed request fails validation and
// is *re-queued at the cluster*, never silently lost; DrainReport says
// which tops failed and discard_pending() evicts a poisoned backlog. A
// shard whose batched generation throws — or whose worker process died —
// keeps the drained requests queued inside its backend and the cluster
// retries them on the next drain (a subprocess backend respawns its worker
// then).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/window.hpp"
#include "sim/backend.hpp"

namespace ffsm {

struct FusionClusterOptions {
  /// Number of shards (must be >= 1). Tops hash onto shards; several tops
  /// can share a shard (and with it a backend / worker process).
  std::size_t shards = 4;
  /// Drain shards in parallel on the pool (each shard's inner batch
  /// composes via ThreadPool re-entrancy).
  bool parallel = true;
  ThreadPool* pool = nullptr;
  /// Per-request engine mode (see GenerateOptions::incremental).
  bool incremental = true;
  /// Bound + eviction policy for every top's persistent closure cache;
  /// total resident cache memory is O(tops * capacity) entries.
  LowerCoverCacheConfig cache_config = {};
  /// Speculative-descent lookahead for every served request (see
  /// SpeculationOptions::lookahead).
  std::uint32_t speculation_lookahead = 2;
  /// Observability context shared by the cluster and its default
  /// in-process backends. nullptr (the default) makes the cluster
  /// construct and own a private *enabled* Obs, so drain spans and
  /// latency histograms work out of the box; pass an explicitly disabled
  /// Obs to opt out of all instrumentation (zero clock reads on the hot
  /// path — the bench baseline). Wire backends built by a factory get
  /// their context via BackendConfig::obs; point it at this cluster's
  /// obs() so every event lands in one timeline.
  obs::Obs* obs = nullptr;
  /// Background telemetry poller. Nonzero starts one poller thread that
  /// every `telemetry_poll_us` microseconds pulls the cluster-wide
  /// cumulative snapshot — this process's Obs plus one kObs exchange per
  /// wire backend (interleaving with drains on the same connection) — and
  /// diffs it into the rotating window set behind obs_windows(). 0 (the
  /// default) starts no thread; poll_telemetry() can still be called
  /// manually.
  std::uint64_t telemetry_poll_us = 0;
  /// Window count + width of the view the poller maintains (see
  /// obs::WindowedObsConfig; default 6 × 10 s).
  obs::WindowedObsConfig telemetry_windows = {};
  /// Produces the backend hosting each shard's tops; called once per
  /// shard at construction with the shard index. Leave empty for the
  /// default InProcessBackend built from the options above.
  std::function<std::unique_ptr<ShardBackend>(std::size_t shard)>
      backend_factory;
};

class FusionCluster {
 public:
  /// A served request. Tickets are cluster-global and strictly increasing
  /// in submission order.
  struct Response {
    std::uint64_t ticket = 0;
    std::string top;
    std::string client;
    FusionResult result;
  };

  /// Outcome of one drain() round.
  struct DrainReport {
    /// Served requests in cluster-ticket order.
    std::vector<Response> responses;
    /// Requests put back (cluster queue or shard backend queue) because
    /// their shard failed to serve them this round.
    std::uint64_t requeued = 0;
    /// Top keys whose shard reported a failure this round (deduplicated,
    /// sorted).
    std::vector<std::string> failed_tops;
  };

  /// Aggregate of the cluster's own counters and every top's backend
  /// Stats (cache counters summed across tops).
  struct Stats {
    std::uint64_t requests_submitted = 0;
    std::uint64_t requests_served = 0;
    std::uint64_t requests_requeued = 0;
    std::uint64_t drains = 0;
    std::uint64_t drain_failures = 0;
    std::uint64_t shard_batches_served = 0;
    /// Speculative cover prefetches launched / consumed / abandoned,
    /// summed over every top's backend (see GenerateStats).
    std::uint64_t speculative_covers_launched = 0;
    std::uint64_t speculation_hits = 0;
    std::uint64_t speculation_wasted_closures = 0;
    /// Worker restarts across every top's backend (processes respawned,
    /// connections re-established); 0 for in-process shards.
    std::uint64_t restarts = 0;
    /// Replica failovers across every shard's backend (the serving
    /// endpoint moved to a different replica); 0 outside replica sets.
    std::uint64_t failovers = 0;
    /// Failed health probes, summed over shards (each shard reports the
    /// failures of *its* replica endpoints). Exact when shards have
    /// disjoint replica sets; when several shards watch the same
    /// endpoints (a shared seed list, as in bench/fusion_service), one
    /// real failed probe counts once per shard watching that endpoint —
    /// the aggregate is a flap *indicator* (0 means healthy everywhere),
    /// not a deduplicated probe count. 0 without a HealthMonitor.
    std::uint64_t health_probes_failed = 0;
    std::size_t shards = 0;
    std::size_t tops = 0;
    std::size_t pending = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_cold_misses = 0;
    std::uint64_t cache_eviction_misses = 0;
    std::uint64_t cache_evictions = 0;
    std::size_t cache_entries = 0;
    std::size_t cache_bytes = 0;
    /// Inserts rejected by the kLfuAdmit frequency gate, and the resident
    /// footprint of the admission sketches; 0 under every other policy.
    std::uint64_t cache_admission_rejects = 0;
    std::size_t cache_sketch_bytes = 0;
  };

  explicit FusionCluster(FusionClusterOptions options = {});

  /// Stops the telemetry poller (worker processes are reaped by the
  /// backends' own destructors; call shutdown() for an orderly stop).
  ~FusionCluster();

  /// Registers `top` under `key` on the backend of shard `shard_of(key)`.
  /// The key must be new. Thread-safe.
  void add_top(const std::string& key, Dfsm top);

  [[nodiscard]] bool has_top(const std::string& key) const;
  [[nodiscard]] std::size_t top_count() const;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Consistent shard assignment: FNV-1a(key) % shard_count(), stable
  /// across runs, platforms and registration order.
  [[nodiscard]] std::size_t shard_of(const std::string& key) const noexcept;

  /// The backend hosting `key` (must be registered).
  [[nodiscard]] const ShardBackend& backend(const std::string& key) const;

  /// The concrete FusionService hosting `key` — only valid when the
  /// shard's backend is the in-process one (the default); throws
  /// ContractViolation otherwise. Backend-agnostic callers should use
  /// top_stats() instead.
  [[nodiscard]] const FusionService& service(const std::string& key) const;

  /// Serving counters of `key`'s top, whichever backend hosts it.
  [[nodiscard]] ServiceStats top_stats(const std::string& key) const;

  /// Queues a request for the given top; thread-safe. Only registration of
  /// the top is checked here — request contents are validated by the
  /// serving shard at drain time (see the failure model above). Returns
  /// the cluster ticket identifying the response.
  std::uint64_t submit(const std::string& top_key, std::string client,
                       FusionRequest request);

  /// Queued-but-unserved requests, cluster queues plus shard backend
  /// backlogs; thread-safe.
  [[nodiscard]] std::size_t pending() const;

  /// Serves every queued request, fanning shards out across the pool.
  /// Requests from a failed shard drain are re-queued and retried on the
  /// next call; see DrainReport. Concurrent drains are serialized.
  DrainReport drain();

  /// Drops every unserved request for `top_key` — cluster-queued requests
  /// and any backlog a failed drain left queued inside the shard's
  /// backend — returning how many were discarded. The escape hatch for a
  /// backlog the shard keeps failing on. Serialized with drain().
  std::size_t discard_pending(const std::string& top_key);

  /// Shuts every shard backend down (terminates worker processes).
  /// Serialized with drain(); queued requests stay queued caller-side.
  void shutdown();

  [[nodiscard]] Stats stats() const;

  /// The cluster's observability context — never null (the one supplied
  /// in FusionClusterOptions::obs, else the private one the cluster
  /// owns). Hand it to BackendConfig::obs so wire backends share it.
  [[nodiscard]] obs::Obs& obs() const noexcept { return *obs_; }

  /// The cluster-wide observability view: this process's counters,
  /// histograms and trace spans merged with every shard backend's
  /// snapshot. Out-of-process backends answer a kObs query over the wire;
  /// their spans arrive tagged with source "shard<i>" so one Chrome trace
  /// shows parent drains and worker generation side by side. A dead or
  /// pre-obs (hello < v4) worker contributes an empty snapshot.
  [[nodiscard]] obs::ObsSnapshot obs_snapshot();

  /// One telemetry poll round, synchronously: ingest obs_snapshot()'s
  /// constituents (this process as "parent", each wire backend as
  /// "shard<i>") into the windowed view. The poller thread calls this on
  /// its schedule; tests and pollerless setups call it directly.
  void poll_telemetry();

  /// A copy of the rotating windowed-telemetry view poll_telemetry()
  /// maintains — per-window activity deltas over the last
  /// telemetry_windows horizon. This is the serve-cost feed a placement /
  /// rebalancing loop consumes ("requests per top over the last minute"),
  /// as opposed to obs_snapshot()'s since-birth cumulatives. Empty until
  /// the first poll.
  [[nodiscard]] obs::WindowedObs obs_windows() const;

 private:
  struct Item {
    std::uint64_t ticket;
    std::string top;
    std::string client;
    FusionRequest request;
    /// Obs timestamp at submit (0 when instrumentation is disabled);
    /// feeds the cluster.queue_wait histogram when the item is handed to
    /// its backend.
    std::uint64_t enqueued_us = 0;
  };

  struct TopEntry {
    /// Backend ticket -> cluster ticket for requests the backend has
    /// accepted but not yet served (survives failed drains). Touched only
    /// by the serialized drain path, one worker per shard.
    std::unordered_map<std::uint64_t, std::uint64_t> inflight;
  };

  struct Shard {
    mutable std::mutex mutex;  // guards tops (topology) and queue
    std::unique_ptr<ShardBackend> backend;
    std::unordered_map<std::string, TopEntry> tops;
    std::vector<Item> queue;
  };

  /// Serves one shard: feed its queue into the backend's per-top queues,
  /// drain each top with a backlog, map backend tickets back to cluster
  /// tickets. Failures are captured in the out-params, never thrown.
  /// `parent_span` is the enclosing cluster.drain span id; the per-top
  /// cluster.serve_top spans parent under it.
  void serve_shard(Shard& shard, std::uint64_t parent_span,
                   std::vector<Response>& responses,
                   std::uint64_t& requeued,
                   std::vector<std::string>& failed_tops);

  /// Telemetry poller thread body: poll_telemetry() every
  /// telemetry_poll_us until stop_poller().
  void poller_loop();

  /// Stops and joins the poller thread; idempotent.
  void stop_poller();

  FusionClusterOptions options_;
  /// Backing storage for obs_ when FusionClusterOptions::obs was null.
  std::unique_ptr<obs::Obs> owned_obs_;
  obs::Obs* obs_ = nullptr;  // never null after construction
  std::vector<Shard> shards_;
  std::mutex drain_mutex_;  // serializes drain() rounds
  std::atomic<std::uint64_t> next_ticket_{1};
  std::atomic<std::uint64_t> requests_submitted_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_requeued_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<std::uint64_t> drain_failures_{0};
  /// Windowed telemetry view (internally synchronized — the poller writes
  /// while obs_windows() copies).
  obs::WindowedObs windows_;
  std::mutex poller_mutex_;  // guards poller_stop_
  std::condition_variable poller_cv_;
  bool poller_stop_ = false;
  std::thread poller_;
};

}  // namespace ffsm
