#include "sim/system.hpp"

#include <algorithm>

#include "partition/quotient.hpp"
#include "util/contracts.hpp"

namespace ffsm {

FusedSystem::FusedSystem(std::vector<Dfsm> machines,
                         const FusedSystemOptions& options)
    : originals_(std::move(machines)),
      journaling_(options.keep_event_log),
      f_(options.f) {
  FFSM_EXPECTS(!originals_.empty());
  cross_ = reachable_cross_product(originals_);

  // Originals' partitions from the tuple components.
  for (std::uint32_t i = 0; i < cross_.machine_count(); ++i)
    partitions_.emplace_back(cross_.component_assignment(i));

  // Algorithm 2 for the backups.
  GenerateOptions gen = options.generation;
  gen.f = options.f;
  FusionResult fusion = generate_fusion(cross_.top, partitions_, gen);

  servers_.reserve(originals_.size() + fusion.partitions.size());
  for (const Dfsm& m : originals_) servers_.emplace_back(m);
  for (std::size_t j = 0; j < fusion.partitions.size(); ++j)
    servers_.emplace_back(quotient_machine(cross_.top, fusion.partitions[j],
                                           "F" + std::to_string(j + 1)));

  // Per-server mapping machine-state -> partition block. For backups the
  // quotient numbers its states by partition block, so the map is identity;
  // originals need it because Partition renumbers blocks by first
  // occurrence over top states.
  for (std::size_t i = 0; i < originals_.size(); ++i) {
    std::vector<std::uint32_t> map(originals_[i].size());
    for (State t = 0; t < cross_.top.size(); ++t)
      map[cross_.tuples[t][i]] = partitions_[i].block_of(t);
    state_to_block_.push_back(std::move(map));
  }
  for (const Partition& p : fusion.partitions) {
    std::vector<std::uint32_t> identity(p.block_count());
    for (std::uint32_t b = 0; b < p.block_count(); ++b) identity[b] = b;
    state_to_block_.push_back(std::move(identity));
  }

  partitions_.insert(partitions_.end(),
                     std::make_move_iterator(fusion.partitions.begin()),
                     std::make_move_iterator(fusion.partitions.end()));
  ghost_ = cross_.top.initial();
}

void FusedSystem::apply(EventId event) {
  if (journaling_) log_.append(event);
  ghost_ = cross_.top.step(ghost_, event);
  for (Server& s : servers_) s.apply(event);
}

std::size_t FusedSystem::run(EventSource& source) {
  std::size_t delivered = 0;
  while (const auto event = source.next()) {
    apply(*event);
    ++delivered;
  }
  return delivered;
}

void FusedSystem::crash(std::size_t server) {
  FFSM_EXPECTS(server < servers_.size());
  servers_[server].crash();
}

State FusedSystem::project(std::size_t server, State top_state) const {
  if (server < originals_.size()) return cross_.tuples[top_state][server];
  // Backup machine states are partition blocks.
  return partitions_[server].block_of(top_state);
}

std::uint32_t FusedSystem::block_of_state(std::size_t server,
                                          State machine_state) const {
  return state_to_block_[server][machine_state];
}

void FusedSystem::corrupt(std::size_t server, ByzantineStrategy strategy,
                          Xoshiro256& rng, State colluding_target) {
  FFSM_EXPECTS(server < servers_.size());
  Server& victim = servers_[server];
  FFSM_EXPECTS(!victim.crashed());
  const State truth = victim.state();
  const std::uint32_t machine_size = victim.machine().size();

  switch (strategy) {
    case ByzantineStrategy::kRandomState: {
      if (machine_size == 1) return;  // nothing wrong to adopt
      State wrong = static_cast<State>(rng.below(machine_size - 1));
      if (wrong >= truth) ++wrong;  // uniform over states != truth
      victim.corrupt(wrong);
      return;
    }
    case ByzantineStrategy::kStaleInitial:
      victim.corrupt(victim.machine().initial());
      return;
    case ByzantineStrategy::kColluding:
      FFSM_EXPECTS(colluding_target < cross_.top.size());
      victim.corrupt(project(server, colluding_target));
      return;
  }
  FFSM_ASSERT(false);
}

State FusedSystem::most_confusable_state() const {
  // The wrong top state whose projections currently collect the most votes:
  // count support among live servers for every t != ghost.
  State best = ghost_;
  std::uint32_t best_count = 0;
  for (State t = 0; t < cross_.top.size(); ++t) {
    if (t == ghost_) continue;
    std::uint32_t count = 0;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (servers_[i].crashed()) continue;
      if (block_of_state(i, servers_[i].state()) ==
          partitions_[i].block_of(t))
        ++count;
    }
    if (best == ghost_ || count > best_count) {
      best = t;
      best_count = count;
    }
  }
  // A single-state top has no wrong state; report the only state there is.
  return best;
}

std::vector<MachineReport> FusedSystem::reports() const {
  std::vector<MachineReport> result;
  result.reserve(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i].crashed())
      result.push_back(MachineReport::crashed());
    else
      result.push_back(
          MachineReport::of(block_of_state(i, servers_[i].state())));
  }
  return result;
}

RecoveryResult FusedSystem::recover() {
  const std::vector<MachineReport> current = reports();
  RecoveryResult result = ffsm::recover(cross_.top.size(), partitions_,
                                        current);
  if (result.unique) {
    for (std::size_t i = 0; i < servers_.size(); ++i)
      servers_[i].restore(project(i, result.top_state));
  }
  return result;
}

State FusedSystem::recover_via_replay(std::size_t server) {
  FFSM_EXPECTS(server < servers_.size());
  FFSM_EXPECTS(journaling_);
  const State recovered =
      replay_recover(servers_[server].machine(), log_);
  servers_[server].restore(recovered);
  return recovered;
}

bool FusedSystem::verify() const {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i].crashed()) return false;
    if (servers_[i].state() != project(i, ghost_)) return false;
  }
  return true;
}

std::uint64_t FusedSystem::dropped_events() const {
  std::uint64_t total = 0;
  for (const Server& server : servers_) total += server.dropped_events();
  return total;
}

ScenarioResult run_scenario(FusedSystem& system, EventSource& events,
                            std::span<const PlannedFault> plan,
                            ByzantineStrategy strategy, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ScenarioResult result;
  std::size_t next_fault = 0;

  const auto inject_due = [&](std::size_t step) {
    while (next_fault < plan.size() && plan[next_fault].step <= step) {
      const PlannedFault& fault = plan[next_fault];
      if (fault.byzantine) {
        const State target = strategy == ByzantineStrategy::kColluding
                                 ? system.most_confusable_state()
                                 : State{0};
        system.corrupt(fault.server, strategy, rng, target);
      } else {
        system.crash(fault.server);
      }
      ++result.faults_injected;
      ++next_fault;
    }
  };

  inject_due(0);
  while (const auto event = events.next()) {
    system.apply(*event);
    ++result.events_delivered;
    inject_due(result.events_delivered);
  }

  result.events_dropped = system.dropped_events();
  const RecoveryResult recovery = system.recover();
  result.recovery_unique = recovery.unique;
  result.recovered_correctly =
      recovery.unique && recovery.top_state == system.ghost_top_state();
  result.verified = system.verify();
  return result;
}

}  // namespace ffsm
