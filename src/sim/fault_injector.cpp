#include "sim/fault_injector.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace ffsm {

std::vector<PlannedFault> plan_faults(const FaultPlanSpec& spec) {
  FFSM_EXPECTS(spec.crashes + spec.byzantine <= spec.server_count);
  Xoshiro256 rng(spec.seed);

  // Sample distinct victims by partial Fisher-Yates.
  std::vector<std::size_t> victims(spec.server_count);
  for (std::size_t i = 0; i < victims.size(); ++i) victims[i] = i;
  const std::size_t faults = spec.crashes + spec.byzantine;
  for (std::size_t i = 0; i < faults; ++i) {
    const std::size_t j = i + rng.below(victims.size() - i);
    std::swap(victims[i], victims[j]);
  }

  std::vector<PlannedFault> plan;
  plan.reserve(faults);
  for (std::size_t i = 0; i < faults; ++i) {
    PlannedFault fault;
    fault.server = victims[i];
    fault.step = spec.steps == 0 ? 0 : rng.below(spec.steps + 1);
    fault.byzantine = i >= spec.crashes;
    plan.push_back(fault);
  }
  std::sort(plan.begin(), plan.end(),
            [](const PlannedFault& a, const PlannedFault& b) {
              return a.step < b.step;
            });
  return plan;
}

}  // namespace ffsm
