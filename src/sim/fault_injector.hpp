// Fault planning for simulator runs.
//
// A fault plan is a list of (step, server, kind) records applied while the
// event stream runs. Plans are generated from a seed so a failing scenario
// reproduces exactly. Byzantine corruption strategies:
//  * kRandomState   — adopt a uniformly random wrong state;
//  * kStaleInitial  — fall back to the machine's initial state (a reset that
//                     nobody noticed);
//  * kColluding     — all liars agree on one wrong top state and report its
//                     projection, the adversary of the paper's section 5.2
//                     example (maximally confuses the vote).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ffsm {

enum class ByzantineStrategy {
  kRandomState,
  kStaleInitial,
  kColluding,
};

struct PlannedFault {
  /// Applied after this many events have been delivered.
  std::size_t step = 0;
  /// Server index within the system (originals first, then backups).
  std::size_t server = 0;
  /// false = crash, true = Byzantine corruption.
  bool byzantine = false;
};

struct FaultPlanSpec {
  std::size_t server_count = 0;
  std::size_t steps = 0;   // length of the event stream
  std::uint32_t crashes = 0;
  std::uint32_t byzantine = 0;
  std::uint64_t seed = 1;
};

/// Draws crashes + byzantine faults on *distinct* servers at random steps
/// in [0, steps]. Requires crashes + byzantine <= server_count.
[[nodiscard]] std::vector<PlannedFault> plan_faults(const FaultPlanSpec& spec);

}  // namespace ffsm
