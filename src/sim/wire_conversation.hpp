// WireConversation: one negotiated connection, many interleaved exchanges.
//
// The parent-side half of exchange multiplexing. A conversation owns a
// connected LineChannel plus the codec negotiated on it, and hands out
// Exchange handles — one per request/reply dialogue (a serve batch, a
// stats query, a top registration). On a multiplexed (binary) wire every
// exchange gets a fresh nonzero id: sends are whole-buffer atomic under a
// send lock, and receives cooperate through reader election — whichever
// exchange thread needs a frame while nobody is reading pulls frames off
// the wire and routes each to its exchange's inbox by id, waking the
// waiters. Drains for different tops therefore interleave on a single
// connection instead of queueing behind one another. On the text wire
// (which cannot carry exchange ids) open() falls back to handing out the
// connection exclusively, one exchange at a time — same API, PR-5
// serialization.
//
// Failure model: any transport or protocol error poisons the whole
// conversation — every blocked receive wakes with NetError, subsequent
// opens fail fast, and the socket is shutdown() so a reader blocked in
// recv on another thread wakes too (the fd itself stays open until the
// conversation is destroyed, so no thread can race a recycled fd). The
// owning backend reacts by dropping its shared_ptr and reconnecting; the
// parent-side queues make that lossless as ever.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/line_channel.hpp"
#include "sim/messages.hpp"

namespace ffsm {

class WireConversation {
 public:
  /// Takes a connected channel whose handshake (negotiation + config +
  /// tops) already ran, and the codec that negotiation agreed on. `obs`
  /// (optional) times wire encode/decode and per-exchange round-trips:
  /// `wire.encode` — encoding a send buffer; `wire.decode` — pulling and
  /// decoding one frame off the wire (includes time blocked on the peer);
  /// `wire.roundtrip` — an exchange's send to its first reply.
  WireConversation(net::LineChannel channel, std::unique_ptr<WireCodec> codec,
                   obs::Obs* obs = nullptr);
  ~WireConversation();

  WireConversation(const WireConversation&) = delete;
  WireConversation& operator=(const WireConversation&) = delete;

  [[nodiscard]] const char* wire_name() const noexcept {
    return codec_->name();
  }
  [[nodiscard]] bool multiplexed() const noexcept {
    return codec_->multiplexed();
  }
  [[nodiscard]] bool poisoned() const;
  /// Exchanges currently open — fail-back and other connection moves are
  /// only safe at zero, when nothing is in flight on the wire.
  [[nodiscard]] std::size_t active_exchanges() const;

  /// Marks the conversation dead: wakes every waiter with NetError and
  /// shuts the socket down (a blocked reader unblocks with EOF). Safe from
  /// any thread, idempotent.
  void poison(const std::string& reason) noexcept;

  /// Best-effort frame outside any exchange — the shutdown goodbye, which
  /// expects no reply. Send failures are swallowed.
  void send_goodbye(const Frame& frame) noexcept;

  /// One request/reply dialogue. Move-only; closing (destroying) it drops
  /// its inbox — any frame later routed to the closed id poisons the
  /// conversation, because a reply nobody awaits means the stream state is
  /// no longer trustworthy.
  class Exchange {
   public:
    Exchange() = default;
    Exchange(Exchange&& other) noexcept;
    Exchange& operator=(Exchange&& other) noexcept;
    ~Exchange();

    Exchange(const Exchange&) = delete;
    Exchange& operator=(const Exchange&) = delete;

    /// Sends the frames as one buffer, one write — frames of a batch are
    /// contiguous on the wire even while other exchanges interleave
    /// between batches. Tags every frame with this exchange's id (the
    /// text wire carries no tag). Throws NetError on a dead conversation.
    void send(std::vector<Frame> frames);
    void send(Frame frame);

    /// Next frame addressed to this exchange; blocks while other
    /// exchanges' frames arrive. Throws NetError once the conversation is
    /// poisoned; rethrows the codec's ContractViolation (after poisoning)
    /// when the stream itself is garbled.
    [[nodiscard]] Frame receive();

   private:
    friend class WireConversation;
    Exchange(std::shared_ptr<WireConversation> conversation,
             std::uint64_t id, std::unique_lock<std::mutex> exclusive);

    void close() noexcept;

    std::shared_ptr<WireConversation> conversation_;
    std::uint64_t id_ = 0;
    /// Text wire: the whole connection, held for the exchange's lifetime.
    std::unique_lock<std::mutex> exclusive_;
    /// Obs timestamp of the last send with no reply seen yet (0 = none);
    /// the first receive after it records one wire.roundtrip sample.
    std::uint64_t sent_at_us_ = 0;
  };

  /// Opens a new exchange. Multiplexed: returns immediately with a fresh
  /// id. Text: blocks until the connection is free (exchanges serialize).
  /// Throws NetError when the conversation is poisoned. `self` must own
  /// this conversation — exchanges keep it alive past a backend's drop.
  [[nodiscard]] static Exchange open(
      const std::shared_ptr<WireConversation>& self);

 private:
  Frame receive_for(std::uint64_t id);
  Frame receive_exclusive();
  void send_buffer(const std::string& buffer);
  void route_locked(Frame&& frame);
  void poison_locked(const std::string& reason) noexcept;

  net::LineChannel channel_;
  std::unique_ptr<WireCodec> codec_;
  obs::Obs* obs_ = nullptr;

  std::mutex send_mutex_;
  std::mutex exclusive_mutex_;  // text wire: one exchange at a time

  mutable std::mutex state_mutex_;
  std::condition_variable frames_ready_;
  bool reading_ = false;
  bool dead_ = false;
  std::string death_reason_;
  std::uint64_t next_exchange_ = 1;
  std::size_t active_ = 0;
  std::unordered_map<std::uint64_t, std::deque<Frame>> inboxes_;
};

}  // namespace ffsm
