// BackendConfig: one declarative description of a cluster's serving tier.
//
// Before this header every backend had its own options struct and every
// embedder (examples/fusion_service, benches, tests) special-cased each
// kind at the FusionClusterOptions::backend_factory call site — four
// lambdas, each naming one backend's options type and copying the shared
// knobs by hand. A BackendConfig names the kind plus the union of the
// knobs once; make_backend_factory() validates the shape (endpoint counts
// per kind) and returns the factory the cluster consumes. The per-backend
// option structs stay the programmatic API for embedders that want one
// specific backend; this is the configuration-driven path.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/health.hpp"
#include "net/retry.hpp"
#include "net/socket.hpp"
#include "sim/backend.hpp"

namespace ffsm {

struct BackendConfig {
  /// Where a shard's FusionServices live. kInProcess: this address space
  /// (the cluster's built-in default). kSubprocess: one ffsm_shard_worker
  /// child per shard over a stdio socketpair. kTcp: one remote worker,
  /// every shard on its own connection. kReplica: an ordered seed list of
  /// worker replicas per shard with lossless failover.
  enum class Kind { kInProcess, kSubprocess, kTcp, kReplica };

  Kind kind = Kind::kInProcess;
  /// Worker endpoints. Shape is validated by make_backend_factory():
  /// kTcp takes exactly one, kReplica one or more (priority order),
  /// kInProcess and kSubprocess none.
  std::vector<net::Endpoint> endpoints;
  /// Worker binary for kSubprocess; empty = discovery rules
  /// (discover_worker_path). Ignored by the connecting kinds.
  std::string worker_path;
  /// Wire-safe service options shipped to workers at every handshake
  /// (and used verbatim by the in-process services).
  ShardServiceConfig service = {};
  /// Negotiation stance per connection/spawn (see sim/messages.hpp):
  /// kAuto offers the binary framing and falls back to text against an
  /// old worker; kText pins the pre-negotiation wire; kBinary requires
  /// the binary framing. Ignored by kInProcess.
  WireMode wire = WireMode::kAuto;
  /// Connection knobs, meaningful for kTcp/kReplica (defaults match the
  /// per-backend option structs; see ReplicaBackendOptions for semantics).
  std::chrono::milliseconds connect_timeout{2000};
  net::RetryPolicy connect_retry = {};
  net::RetryPolicy serve_retry = {2, std::chrono::milliseconds(50),
                                  std::chrono::milliseconds(1000), 2};
  std::size_t serve_window = 32;
  int keepalive_idle_s = 30;
  int keepalive_interval_s = 10;
  int keepalive_probes = 3;
  /// Optional liveness oracle shared across shards; kReplica only.
  std::shared_ptr<net::HealthMonitor> monitor;
  /// Optional observability context handed to every backend the factory
  /// builds (nullptr = uninstrumented). Typically the cluster's own Obs
  /// (FusionCluster::obs()), so backend-side events — wire timing,
  /// respawns, failovers — land in the same timeline as the cluster's
  /// drain spans. Ignored by kInProcess (the cluster instruments its
  /// default backend directly).
  obs::Obs* obs = nullptr;
};

/// CLI name of a backend kind: "inprocess", "subprocess", "tcp",
/// "replica-tcp".
[[nodiscard]] const char* backend_kind_name(BackendConfig::Kind kind);

/// Strict inverse of backend_kind_name: false on any other spelling.
[[nodiscard]] bool parse_backend_kind(std::string_view name,
                                      BackendConfig::Kind& out);

/// Validates `config` and returns the factory for
/// FusionClusterOptions::backend_factory. kInProcess yields an empty
/// function (the cluster builds its default backend). Throws
/// ContractViolation on a shape violation: endpoints where none belong,
/// a kTcp endpoint count other than one, an empty kReplica seed list, or
/// a zero port anywhere.
[[nodiscard]] std::function<std::unique_ptr<ShardBackend>(std::size_t)>
make_backend_factory(BackendConfig config);

}  // namespace ffsm
