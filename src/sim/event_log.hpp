// Durable event log and replay-based recovery — the classical alternative
// the paper's model implicitly competes with.
//
// If every environment event is journaled to failure-resistant storage, a
// crashed machine can be recovered by replaying the whole log into a fresh
// copy: no backup machines at all, but recovery costs O(T) for a T-event
// history (and the log grows without bound). Fusion recovery costs
// O((n+m)·N) independent of T. bench_recovery_modes quantifies the
// crossover; this module provides the log and the replay decoder.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fsm/dfsm.hpp"

namespace ffsm {

/// Append-only journal of delivered events.
class EventLog {
 public:
  void append(EventId event) { events_.push_back(event); }

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  [[nodiscard]] std::span<const EventId> view() const noexcept {
    return events_;
  }

  /// Truncates the log (e.g. after a checkpoint).
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<EventId> events_;
};

/// Replay recovery: the machine's state after the full journal, starting
/// from its initial state. O(|log|) steps.
[[nodiscard]] State replay_recover(const Dfsm& machine, const EventLog& log);

/// Checkpointed replay: resume from (checkpoint_state, events after the
/// checkpoint position). O(|log| - position).
[[nodiscard]] State replay_recover_from(const Dfsm& machine,
                                        State checkpoint_state,
                                        const EventLog& log,
                                        std::size_t position);

}  // namespace ffsm
