#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>

#include "util/contracts.hpp"

namespace ffsm {

// A batch is one run_chunks invocation. Lifetime protocol: the batch lives
// on the caller's stack; workers may only load the batch pointer under the
// pool mutex while batch_ still points at it, and they announce themselves
// via active_workers_ before releasing the mutex. The caller retires the
// batch (batch_ = nullptr) only after every attached worker detached, so no
// worker can touch a dead batch.
struct ThreadPool::Batch {
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};
  const std::function<void(std::size_t)>* fn = nullptr;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  // The calling thread participates in every batch, so spawn one fewer
  // worker than the requested parallelism.
  workers_.reserve(threads > 0 ? threads - 1 : 0);
  for (std::size_t i = 1; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_ready_.wait(lock, [this, seen_generation] {
      return stopping_ ||
             (batch_ != nullptr && generation_ != seen_generation);
    });
    if (stopping_) return;

    Batch* const batch = batch_;
    seen_generation = generation_;
    ++active_workers_;
    lock.unlock();

    while (true) {
      const std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch->chunks) break;
      (*batch->fn)(i);
    }

    lock.lock();
    if (--active_workers_ == 0) batch_done_.notify_all();
  }
}

void ThreadPool::run_chunks(std::size_t chunks,
                            const std::function<void(std::size_t)>& fn) {
  FFSM_EXPECTS(fn != nullptr);
  if (chunks == 0) return;
  if (workers_.empty() || chunks == 1) {
    for (std::size_t i = 0; i < chunks; ++i) fn(i);
    return;
  }

  Batch batch;
  batch.chunks = chunks;
  batch.fn = &fn;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FFSM_ASSERT(batch_ == nullptr);  // run_chunks is not re-entrant
    batch_ = &batch;
    ++generation_;
  }
  work_ready_.notify_all();

  // The caller participates too; when this loop exits every chunk has been
  // claimed (not necessarily finished — workers may still be running).
  while (true) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.chunks) break;
    fn(i);
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [this] { return active_workers_ == 0; });
    batch_ = nullptr;
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

namespace {

struct ChunkPlan {
  std::size_t count = 0;
  std::size_t size = 0;
};

ChunkPlan plan_chunks(std::size_t items, const ThreadPool& pool,
                      const ParallelOptions& options) {
  const std::size_t parallelism = pool.thread_count() + 1;
  const std::size_t max_chunks =
      std::max<std::size_t>(1, parallelism * options.chunks_per_thread);
  ChunkPlan plan;
  plan.count = std::min(items, max_chunks);
  plan.size = (items + plan.count - 1) / plan.count;
  plan.count = (items + plan.size - 1) / plan.size;
  return plan;
}

}  // namespace

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const ParallelOptions& options) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      options);
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    const ParallelOptions& options) {
  FFSM_EXPECTS(begin <= end);
  const std::size_t items = end - begin;
  if (items == 0) return;

  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::global();
  if (items < options.serial_threshold || pool.thread_count() == 0) {
    body(begin, end);
    return;
  }

  const ChunkPlan plan = plan_chunks(items, pool, options);
  pool.run_chunks(plan.count, [&](std::size_t chunk) {
    const std::size_t lo = begin + chunk * plan.size;
    const std::size_t hi = std::min(end, lo + plan.size);
    if (lo < hi) body(lo, hi);
  });
}

}  // namespace ffsm
