#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>

#include "util/contracts.hpp"

namespace ffsm {

// A batch is one run_chunks invocation. Lifetime protocol: the batch lives
// on the caller's stack; workers may only load the batch pointer under the
// pool mutex while batch_ still points at it, and they announce themselves
// via active_workers_ before releasing the mutex. The caller retires the
// batch (batch_ = nullptr) only after every attached worker detached, so no
// worker can touch a dead batch.
struct ThreadPool::Batch {
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};
  const std::function<void(std::size_t)>* fn = nullptr;
};

namespace {

// Stack of pools whose batches the calling thread is currently executing
// (outermost first). A linked list of stack nodes rather than a single
// pointer: same-thread re-entrancy must be detected across pools too
// (A -> B -> A on one thread), or the innermost call would fan out and
// deadlock on A's submission lock, which A's original submitter holds while
// waiting for this very worker. Note the stack is per-thread by design —
// chains that hop through *another pool's workers* (A's worker submits to
// B, B's worker submits back to A) are not detectable this way and are
// unsupported; see the header.
struct PoolScopeNode {
  const ThreadPool* pool;
  PoolScopeNode* prev;
};

thread_local PoolScopeNode* tl_pool_stack = nullptr;

struct CurrentPoolScope {
  explicit CurrentPoolScope(const ThreadPool* pool)
      : node{pool, tl_pool_stack} {
    tl_pool_stack = &node;
  }
  ~CurrentPoolScope() { tl_pool_stack = node.prev; }
  PoolScopeNode node;
};

}  // namespace

bool ThreadPool::on_this_pool() const noexcept {
  for (const PoolScopeNode* n = tl_pool_stack; n != nullptr; n = n->prev)
    if (n->pool == this) return true;
  return false;
}

// One submitted task. Claiming (Pending -> Running or Pending -> Cancelled)
// happens under `mutex`, so exactly one of {a pool worker, a joining
// thread, a canceller} retires each task; the pending deque only carries
// the pointer and never arbitrates.
struct TaskHandle::State {
  enum class Status { kPending, kRunning, kDone, kCancelled };

  std::mutex mutex;
  std::condition_variable done_cv;
  Status status = Status::kPending;  // guarded by mutex
  std::function<void()> fn;          // released on claim/cancel
  CancellationToken token;
  const ThreadPool* pool = nullptr;  // for CurrentPoolScope on inline runs

  /// Claims a pending task and runs it on the calling thread; a no-op when
  /// some other thread already claimed it. A task whose token was
  /// cancelled before the claim retires as Cancelled without running. The
  /// body runs under the owning pool's scope so nested run_chunks calls
  /// execute inline (the pool's workers may all be busy or nonexistent).
  void claim_and_run() {
    std::function<void()> body;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (status != Status::kPending) return;
      if (token.cancelled()) {
        status = Status::kCancelled;
        fn = nullptr;
        done_cv.notify_all();
        return;
      }
      status = Status::kRunning;
      body = std::move(fn);
      fn = nullptr;
    }
    // Mark Done even on unwind: a body that throws during an inline join
    // must not leave concurrent joiners blocked forever (on a worker the
    // exception terminates the process anyway, per the pool's policy).
    struct MarkDone {
      State* state;
      ~MarkDone() {
        const std::lock_guard<std::mutex> lock(state->mutex);
        state->status = Status::kDone;
        state->done_cv.notify_all();
      }
    } mark{this};
    const CurrentPoolScope scope(pool);
    body();
  }

  /// Retires a still-pending task as Cancelled; returns false when it was
  /// already claimed.
  bool cancel_if_pending() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (status != Status::kPending) return false;
    status = Status::kCancelled;
    fn = nullptr;
    done_cv.notify_all();
    return true;
  }
};

bool TaskHandle::join() {
  FFSM_EXPECTS(state_ != nullptr);
  using Status = State::Status;
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->status == Status::kDone) return true;
    if (state_->status == Status::kCancelled) return false;
  }
  // Pending or running. A pending task is claimed and run inline — the
  // joining thread makes progress even when the pool has zero workers or
  // they are all busy.
  state_->claim_and_run();
  // claim_and_run is a no-op when a pool worker claimed the task between
  // the check above and the claim; the wait below covers that race — join
  // must not return while the body is still running elsewhere.
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->done_cv.wait(lock, [this] {
    return state_->status == Status::kDone ||
           state_->status == Status::kCancelled;
  });
  return state_->status == Status::kDone;
}

void TaskHandle::cancel() {
  FFSM_EXPECTS(state_ != nullptr);
  state_->token.cancel();
  (void)state_->cancel_if_pending();
}

bool TaskHandle::finished() const {
  FFSM_EXPECTS(state_ != nullptr);
  using Status = State::Status;
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->status == Status::kDone ||
         state_->status == Status::kCancelled;
}

TaskHandle ThreadPool::submit(std::function<void()> fn,
                              CancellationToken token) {
  FFSM_EXPECTS(fn != nullptr);
  auto state = std::make_shared<TaskHandle::State>();
  state->fn = std::move(fn);
  state->token = std::move(token);
  state->pool = this;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FFSM_EXPECTS(!stopping_);
    tasks_.push_back(state);
  }
  work_ready_.notify_one();
  return TaskHandle{std::move(state)};
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  // The calling thread participates in every batch, so spawn one fewer
  // worker than the requested parallelism.
  workers_.reserve(threads > 0 ? threads - 1 : 0);
  for (std::size_t i = 1; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  std::deque<std::shared_ptr<TaskHandle::State>> leftover;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    leftover.swap(tasks_);
  }
  work_ready_.notify_all();
  // Tasks still queued at teardown are discarded: mark them Cancelled so
  // outstanding handles' join() returns false instead of blocking forever.
  for (const auto& state : leftover) (void)state->cancel_if_pending();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_ready_.wait(lock, [this, seen_generation] {
      return stopping_ || !tasks_.empty() ||
             (batch_ != nullptr && generation_ != seen_generation);
    });
    if (stopping_) return;

    // Batches keep priority over submitted tasks; tasks fill the gaps.
    if (batch_ != nullptr && generation_ != seen_generation) {
      Batch* const batch = batch_;
      seen_generation = generation_;
      ++active_workers_;
      lock.unlock();

      {
        const CurrentPoolScope scope(this);
        while (true) {
          const std::size_t i =
              batch->next.fetch_add(1, std::memory_order_relaxed);
          if (i >= batch->chunks) break;
          (*batch->fn)(i);
        }
      }

      lock.lock();
      if (--active_workers_ == 0) batch_done_.notify_all();
      continue;
    }

    const std::shared_ptr<TaskHandle::State> task = std::move(tasks_.front());
    tasks_.pop_front();
    lock.unlock();
    // claim_and_run arbitrates against a concurrent inline join() or
    // cancel() via the task's own state mutex; losing the race is a no-op.
    task->claim_and_run();
    lock.lock();
  }
}

void ThreadPool::run_chunks(std::size_t chunks,
                            const std::function<void(std::size_t)>& fn) {
  FFSM_EXPECTS(fn != nullptr);
  if (chunks == 0) return;
  // Nested call from a task already running on this pool: the pool's
  // workers are busy with the enclosing batch, so fan-out would deadlock.
  // Run inline on the calling thread instead.
  if (workers_.empty() || chunks == 1 || on_this_pool()) {
    for (std::size_t i = 0; i < chunks; ++i) fn(i);
    return;
  }

  // One external batch at a time; concurrent submitters queue here.
  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);

  Batch batch;
  batch.chunks = chunks;
  batch.fn = &fn;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FFSM_ASSERT(batch_ == nullptr);  // guaranteed by submit_mutex_
    batch_ = &batch;
    ++generation_;
  }
  work_ready_.notify_all();

  // Retire the batch on every exit path, including unwind: if fn throws in
  // the caller's participation loop below, workers may still be claiming
  // chunks from the stack-allocated Batch — it must stay published until
  // every attached worker detached, or they read freed stack memory.
  struct Retire {
    ThreadPool* pool;
    ~Retire() {
      std::unique_lock<std::mutex> lock(pool->mutex_);
      pool->batch_done_.wait(lock,
                             [this] { return pool->active_workers_ == 0; });
      pool->batch_ = nullptr;
    }
  } retire{this};

  // The caller participates too; when this loop exits every chunk has been
  // claimed (not necessarily finished — workers may still be running).
  {
    const CurrentPoolScope scope(this);
    while (true) {
      const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.chunks) break;
      fn(i);
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

namespace {

struct ChunkPlan {
  std::size_t count = 0;
  std::size_t size = 0;
};

ChunkPlan plan_chunks(std::size_t items, const ThreadPool& pool,
                      const ParallelOptions& options) {
  const std::size_t parallelism = pool.thread_count() + 1;
  const std::size_t max_chunks =
      std::max<std::size_t>(1, parallelism * options.chunks_per_thread);
  ChunkPlan plan;
  plan.count = std::min(items, max_chunks);
  plan.size = (items + plan.count - 1) / plan.count;
  plan.count = (items + plan.size - 1) / plan.size;
  return plan;
}

}  // namespace

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const ParallelOptions& options) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      options);
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    const ParallelOptions& options) {
  FFSM_EXPECTS(begin <= end);
  const std::size_t items = end - begin;
  if (items == 0) return;

  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::global();
  if (items < options.serial_threshold || pool.thread_count() == 0) {
    body(begin, end);
    return;
  }

  const ChunkPlan plan = plan_chunks(items, pool, options);
  pool.run_chunks(plan.count, [&](std::size_t chunk) {
    const std::size_t lo = begin + chunk * plan.size;
    const std::size_t hi = std::min(end, lo + plan.size);
    if (lo < hi) body(lo, hi);
  });
}

}  // namespace ffsm
