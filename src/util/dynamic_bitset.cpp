#include "util/dynamic_bitset.hpp"

namespace ffsm {

std::size_t DynamicBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0)
      return w * kBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
  }
  return size_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const noexcept {
  ++i;
  if (i >= size_) return size_;
  std::size_t w = i / kBits;
  std::uint64_t bits = words_[w] & (~std::uint64_t{0} << (i % kBits));
  while (true) {
    if (bits != 0)
      return w * kBits + static_cast<std::size_t>(std::countr_zero(bits));
    if (++w == words_.size()) return size_;
    bits = words_[w];
  }
}

}  // namespace ffsm
