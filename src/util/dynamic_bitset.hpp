// A fixed-capacity dynamic bitset tuned for the set arithmetic this library
// performs on partition blocks and fault-graph edge sets.
//
// std::vector<bool> lacks word-level access and popcount; std::bitset needs a
// compile-time size. This class stores 64-bit words, exposes the handful of
// operations we need (set/test/count/and/or/iterate), and keeps unused bits of
// the last word zero as a class invariant so that word-wise comparisons and
// popcounts are exact.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace ffsm {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Constructs a bitset with `size` bits, all zero.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + kBits - 1) / kBits, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void set(std::size_t i) {
    FFSM_EXPECTS(i < size_);
    words_[i / kBits] |= (std::uint64_t{1} << (i % kBits));
  }

  void reset(std::size_t i) {
    FFSM_EXPECTS(i < size_);
    words_[i / kBits] &= ~(std::uint64_t{1} << (i % kBits));
  }

  void reset_all() noexcept {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] bool test(std::size_t i) const {
    FFSM_EXPECTS(i < size_);
    return (words_[i / kBits] >> (i % kBits)) & 1u;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  [[nodiscard]] bool any() const noexcept {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] bool none() const noexcept { return !any(); }

  DynamicBitset& operator|=(const DynamicBitset& rhs) {
    FFSM_EXPECTS(size_ == rhs.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= rhs.words_[i];
    return *this;
  }

  DynamicBitset& operator&=(const DynamicBitset& rhs) {
    FFSM_EXPECTS(size_ == rhs.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= rhs.words_[i];
    return *this;
  }

  /// True iff every bit set in *this is also set in `rhs`.
  [[nodiscard]] bool is_subset_of(const DynamicBitset& rhs) const {
    FFSM_EXPECTS(size_ == rhs.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & ~rhs.words_[i]) != 0) return false;
    return true;
  }

  /// True iff the two sets share at least one element.
  [[nodiscard]] bool intersects(const DynamicBitset& rhs) const {
    FFSM_EXPECTS(size_ == rhs.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & rhs.words_[i]) != 0) return true;
    return false;
  }

  friend bool operator==(const DynamicBitset& a,
                         const DynamicBitset& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Index of the first set bit, or size() when none is set.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// Index of the first set bit strictly after `i`, or size() when none.
  [[nodiscard]] std::size_t find_next(std::size_t i) const noexcept;

  /// Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto b = static_cast<std::size_t>(std::countr_zero(bits));
        fn(w * kBits + b);
        bits &= bits - 1;
      }
    }
  }

 private:
  static constexpr std::size_t kBits = 64;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ffsm
