#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace ffsm {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FFSM_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  FFSM_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c]
          << std::string(widths[c] - row[c].size() + 1, ' ') << '|';
    }
    out << '\n';
  };

  emit_row(header_);
  out << '|';
  for (const auto w : widths) out << std::string(w + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

std::string with_thousands(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t since_sep = digits.size() % 3;
  if (since_sep == 0) since_sep = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && since_sep == 0) {
      out.push_back(',');
      since_sep = 3;
    }
    out.push_back(digits[i]);
    --since_sep;
  }
  return out;
}

}  // namespace ffsm
