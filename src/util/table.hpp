// Plain-text table rendering used by the benchmark harnesses and examples to
// print paper-style result tables (rows of the evaluation table, figure
// series) in aligned, diffable form.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ffsm {

/// Column-aligned ASCII table with a header row.
///
/// Usage:
///   TextTable t({"Machines", "f", "|T|", "|Fusion|"});
///   t.add_row({"MESI+TCP+A+B", "1", "131", "85"});
///   std::cout << t;
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with single-space-padded `|` separators and a rule under the
  /// header.
  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a count with thousands separators ("82944" -> "82,944").
[[nodiscard]] std::string with_thousands(unsigned long long value);

}  // namespace ffsm
