// Shared-memory parallelism substrate.
//
// The library's hot loops (fault-graph construction, lower-cover candidate
// evaluation, exhaustive fault-injection sweeps) are data-parallel with
// independent iterations. This header provides a reusable fixed-size thread
// pool and a blocking `parallel_for` over an index range with static chunking.
//
// Design notes (see DESIGN.md section 6):
//  * ISO C++ threads only (no OpenMP dependency), per the Core Guidelines'
//    preference for standard facilities; the pool is created lazily and reused
//    so per-call overhead is two condition-variable round trips.
//  * Results must be accumulated deterministically: use per-index output
//    slots or per-chunk partials merged in index order, never unordered
//    atomics, so that runs are reproducible regardless of thread count.
//  * Nested parallelism on one pool degrades gracefully: a parallel_for
//    issued from inside a task already running on that pool (at any
//    nesting depth on the calling thread, even through another pool's
//    batch) executes inline instead of deadlocking, so outer fan-outs
//    (e.g. generate_fusion_batch over requests) compose with the inner
//    parallel hot loops without configuration. What is NOT supported is a
//    cycle through two pools' *workers* — pool A's worker submitting to
//    pool B whose worker submits back to A blocks on A's submission lock.
//    Use one pool per independent operation (the library does).
#pragma once

#include <condition_variable>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ffsm {

/// Cooperative cancellation flag shared between a task's submitter and its
/// body. Copies share one flag; cancel() is sticky and thread-safe. A task
/// observes cancellation by polling cancelled() at its own safe points —
/// cancellation never interrupts a running body.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Handle to one task submitted with ThreadPool::submit.
///
/// Lifecycle: Pending (queued) -> Running -> Done, or Pending -> Cancelled.
/// join() never deadlocks, even on a pool with zero workers: a still-pending
/// task is claimed and run inline on the joining thread. Handles are
/// copyable (they share the task's state) and outlive the pool — a task the
/// pool's destructor discarded reports Cancelled.
class TaskHandle {
 public:
  /// Empty handle; valid() is false and the other members must not be
  /// called.
  TaskHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks until the task finished; a still-pending task is claimed and
  /// executed inline on this thread (so progress never depends on pool
  /// workers being available). Returns true when the body ran to
  /// completion, false when the task was cancelled before it started.
  bool join();

  /// Cancels the task's token and, when the task has not started yet,
  /// retires it unrun (join() will return false). A task already running
  /// only sees the cooperative token.
  void cancel();

  /// True once the task is Done or Cancelled (non-blocking).
  [[nodiscard]] bool finished() const;

 private:
  friend class ThreadPool;
  struct State;
  explicit TaskHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// A fixed-size pool of worker threads executing submitted tasks.
///
/// Exception policy: a task that throws terminates the program (the
/// exception escapes the worker). Library callers wrap user callbacks so
/// this only happens on contract violations inside ffsm itself.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Runs fn(chunk_index) for chunk_index in [0, chunks) across the pool and
  /// blocks until all chunks completed. The calling thread participates.
  ///
  /// Safe to call concurrently from multiple external threads (batches are
  /// serialized on an internal submission lock) and safe to call from inside
  /// a task running on this pool (the nested batch runs inline on the
  /// calling worker).
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is executing a task on this pool anywhere
  /// in its nesting stack (worker or participating submitter, even through
  /// an intervening batch on another pool). Nested run_chunks calls from
  /// such a thread execute inline.
  [[nodiscard]] bool on_this_pool() const noexcept;

  /// Enqueues one independent task; workers pick tasks up between batches
  /// (batches keep priority — tasks are the speculative/background tier).
  /// The token is polled before the body starts: a task cancelled while
  /// still queued is retired unrun. Tasks must not throw (same policy as
  /// run_chunks bodies: an escaped exception on a worker terminates; one
  /// escaping an inline join() propagates to the joiner).
  TaskHandle submit(std::function<void()> fn,
                    CancellationToken token = {});

  /// Process-wide default pool (lazily constructed, hardware concurrency).
  static ThreadPool& global();

 private:
  struct Batch;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;          // serializes external batches
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  Batch* batch_ = nullptr;           // guarded by mutex_
  std::uint64_t generation_ = 0;     // guarded by mutex_
  std::size_t active_workers_ = 0;   // guarded by mutex_
  bool stopping_ = false;            // guarded by mutex_
  /// Pending submitted tasks, FIFO; guarded by mutex_. Entries are claimed
  /// under the task's own state mutex, so a joiner racing a worker for the
  /// same task resolves cleanly (one runs it, the other waits).
  std::deque<std::shared_ptr<TaskHandle::State>> tasks_;
};

/// Options controlling parallel_for execution.
struct ParallelOptions {
  /// Pool to run on; nullptr means ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Below this iteration count the loop runs serially on the caller.
  std::size_t serial_threshold = 1024;
  /// Upper bound on chunks per thread (load-balancing granularity).
  std::size_t chunks_per_thread = 4;
};

/// Calls body(i) for every i in [begin, end), potentially in parallel.
/// body must be safe to invoke concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const ParallelOptions& options = {});

/// Calls body(chunk_begin, chunk_end) over a partition of [begin, end) into
/// contiguous chunks. Preferred over parallel_for when the body keeps
/// per-chunk scratch state (e.g. local accumulators).
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    const ParallelOptions& options = {});

}  // namespace ffsm
