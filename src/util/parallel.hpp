// Shared-memory parallelism substrate.
//
// The library's hot loops (fault-graph construction, lower-cover candidate
// evaluation, exhaustive fault-injection sweeps) are data-parallel with
// independent iterations. This header provides a reusable fixed-size thread
// pool and a blocking `parallel_for` over an index range with static chunking.
//
// Design notes (see DESIGN.md section 6):
//  * ISO C++ threads only (no OpenMP dependency), per the Core Guidelines'
//    preference for standard facilities; the pool is created lazily and reused
//    so per-call overhead is two condition-variable round trips.
//  * Results must be accumulated deterministically: use per-index output
//    slots or per-chunk partials merged in index order, never unordered
//    atomics, so that runs are reproducible regardless of thread count.
//  * Nested parallelism on one pool degrades gracefully: a parallel_for
//    issued from inside a task already running on that pool (at any
//    nesting depth on the calling thread, even through another pool's
//    batch) executes inline instead of deadlocking, so outer fan-outs
//    (e.g. generate_fusion_batch over requests) compose with the inner
//    parallel hot loops without configuration. What is NOT supported is a
//    cycle through two pools' *workers* — pool A's worker submitting to
//    pool B whose worker submits back to A blocks on A's submission lock.
//    Use one pool per independent operation (the library does).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ffsm {

/// A fixed-size pool of worker threads executing submitted tasks.
///
/// Exception policy: a task that throws terminates the program (the
/// exception escapes the worker). Library callers wrap user callbacks so
/// this only happens on contract violations inside ffsm itself.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Runs fn(chunk_index) for chunk_index in [0, chunks) across the pool and
  /// blocks until all chunks completed. The calling thread participates.
  ///
  /// Safe to call concurrently from multiple external threads (batches are
  /// serialized on an internal submission lock) and safe to call from inside
  /// a task running on this pool (the nested batch runs inline on the
  /// calling worker).
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is executing a task on this pool anywhere
  /// in its nesting stack (worker or participating submitter, even through
  /// an intervening batch on another pool). Nested run_chunks calls from
  /// such a thread execute inline.
  [[nodiscard]] bool on_this_pool() const noexcept;

  /// Process-wide default pool (lazily constructed, hardware concurrency).
  static ThreadPool& global();

 private:
  struct Batch;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;          // serializes external batches
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  Batch* batch_ = nullptr;           // guarded by mutex_
  std::uint64_t generation_ = 0;     // guarded by mutex_
  std::size_t active_workers_ = 0;   // guarded by mutex_
  bool stopping_ = false;            // guarded by mutex_
};

/// Options controlling parallel_for execution.
struct ParallelOptions {
  /// Pool to run on; nullptr means ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Below this iteration count the loop runs serially on the caller.
  std::size_t serial_threshold = 1024;
  /// Upper bound on chunks per thread (load-balancing granularity).
  std::size_t chunks_per_thread = 4;
};

/// Calls body(i) for every i in [begin, end), potentially in parallel.
/// body must be safe to invoke concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const ParallelOptions& options = {});

/// Calls body(chunk_begin, chunk_end) over a partition of [begin, end) into
/// contiguous chunks. Preferred over parallel_for when the body keeps
/// per-chunk scratch state (e.g. local accumulators).
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    const ParallelOptions& options = {});

}  // namespace ffsm
