// Contract checking for the ffsm library.
//
// Library code validates preconditions with FFSM_EXPECTS and internal
// invariants with FFSM_ASSERT. Violations throw ffsm::ContractViolation so
// that tests can assert on misuse without killing the process; this mirrors
// the Guidelines Support Library's Expects/Ensures in "throwing" mode.
#pragma once

#include <stdexcept>
#include <string>

namespace ffsm {

/// Thrown when a precondition, postcondition or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace ffsm

#define FFSM_EXPECTS(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ffsm::detail::contract_fail("precondition", #cond, __FILE__,        \
                                    __LINE__);                              \
  } while (false)

#define FFSM_ENSURES(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ffsm::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                    __LINE__);                              \
  } while (false)

#define FFSM_ASSERT(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ffsm::detail::contract_fail("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
