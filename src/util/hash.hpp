// FNV-1a — the library's standard cheap hash for short sequences (state
// tuples, block assignments, minimization signatures, shard keys). One
// definition so the constants and the mixing can never drift between call
// sites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ffsm {

inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// FNV-1a over a range of unsigned integer values, one round per element
/// (not per byte — matches the historical hashing of state/block ids).
template <typename Range>
[[nodiscard]] std::size_t fnv1a(const Range& values) noexcept {
  std::uint64_t h = kFnv1aOffset;
  for (const auto v : values) {
    h ^= static_cast<std::uint64_t>(v);
    h *= kFnv1aPrime;
  }
  return static_cast<std::size_t>(h);
}

/// FNV-1a over a string's bytes (chars widened unsigned, one round per
/// byte) — stable across runs and platforms, unlike std::hash.
[[nodiscard]] inline std::size_t fnv1a_bytes(std::string_view text) noexcept {
  std::uint64_t h = kFnv1aOffset;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace ffsm
