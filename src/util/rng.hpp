// Deterministic pseudo-random number generation for workloads and tests.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64: fast, high
// quality, and — unlike std::mt19937 used through
// std::uniform_int_distribution — bit-for-bit reproducible across standard
// library implementations, which
// the property-test suites and benchmark workload generators rely on.
#pragma once

#include <cstdint>

#include "util/contracts.hpp"

namespace ffsm {

/// SplitMix64; used to expand a single seed into xoshiro's 256-bit state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9Bull) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  /// Throws ContractViolation when bound is 0.
  std::uint64_t below(std::uint64_t bound) {
    FFSM_EXPECTS(bound > 0);
    while (true) {
      const std::uint64_t x = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound)
        return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Throws when lo > hi.
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) {
    FFSM_EXPECTS(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace ffsm
