#include "obs/metrics.hpp"

#include <mutex>

namespace ffsm::obs {

std::uint64_t HistogramSnapshot::percentile(double p) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (p <= 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the requested sample, 1-based: ceil(p/100 * total), at least 1.
  auto rank = static_cast<std::uint64_t>(p / 100.0 *
                                         static_cast<double>(total));
  if (static_cast<double>(rank) * 100.0 < p * static_cast<double>(total))
    ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return histogram_bucket_bound(i);
  }
  return histogram_bucket_bound(kHistogramBuckets - 1);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  {
    const std::shared_lock lock(mutex_);
    if (const auto it = counters_.find(name); it != counters_.end())
      return *it->second;
  }
  const std::unique_lock lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  {
    const std::shared_lock lock(mutex_);
    if (const auto it = histograms_.find(name); it != histograms_.end())
      return *it->second;
  }
  const std::unique_lock lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::snapshot(
    std::map<std::string, std::uint64_t>* counters,
    std::map<std::string, HistogramSnapshot>* histograms) const {
  const std::shared_lock lock(mutex_);
  if (counters != nullptr)
    for (const auto& [name, c] : counters_) (*counters)[name] = c->value();
  if (histograms != nullptr)
    for (const auto& [name, h] : histograms_)
      (*histograms)[name] = h->snapshot();
}

}  // namespace ffsm::obs
