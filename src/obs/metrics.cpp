#include "obs/metrics.hpp"

#include <mutex>

namespace ffsm::obs {

namespace {

/// Index of the bucket holding the ceil(p/100 * count)-th smallest sample.
std::size_t percentile_bucket(const HistogramSnapshot& snap,
                              double p) noexcept {
  const std::uint64_t total = snap.count();
  if (p <= 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the requested sample, 1-based: ceil(p/100 * total), at least 1.
  auto rank = static_cast<std::uint64_t>(p / 100.0 *
                                         static_cast<double>(total));
  if (static_cast<double>(rank) * 100.0 < p * static_cast<double>(total))
    ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += snap.buckets[i];
    if (seen >= rank) return i;
  }
  return kHistogramBuckets - 1;
}

}  // namespace

std::uint64_t HistogramSnapshot::percentile(double p) const noexcept {
  if (count() == 0) return 0;
  return histogram_bucket_bound(percentile_bucket(*this, p));
}

std::uint64_t HistogramSnapshot::percentile_mid(double p) const noexcept {
  if (count() == 0) return 0;
  return histogram_bucket_mid(percentile_bucket(*this, p));
}

Counter& MetricsRegistry::counter(std::string_view name) {
  {
    const std::shared_lock lock(mutex_);
    if (const auto it = counters_.find(name); it != counters_.end())
      return *it->second;
  }
  const std::unique_lock lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  {
    const std::shared_lock lock(mutex_);
    if (const auto it = histograms_.find(name); it != histograms_.end())
      return *it->second;
  }
  const std::unique_lock lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  {
    const std::shared_lock lock(mutex_);
    if (const auto it = gauges_.find(name); it != gauges_.end())
      return *it->second;
  }
  const std::unique_lock lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

void MetricsRegistry::snapshot(
    std::map<std::string, std::uint64_t>* counters,
    std::map<std::string, HistogramSnapshot>* histograms,
    std::map<std::string, std::int64_t>* gauges) const {
  const std::shared_lock lock(mutex_);
  if (counters != nullptr)
    for (const auto& [name, c] : counters_) (*counters)[name] = c->value();
  if (histograms != nullptr)
    for (const auto& [name, h] : histograms_)
      (*histograms)[name] = h->snapshot();
  if (gauges != nullptr)
    for (const auto& [name, g] : gauges_) (*gauges)[name] = g->value();
}

}  // namespace ffsm::obs
