// WindowedObs: the last N fixed-duration windows of activity, per source.
//
// Everything in src/obs is cumulative — counters only grow, histogram
// buckets only fill — which makes merging exact but makes "what happened
// recently" invisible: after an hour of traffic, one slow minute barely
// moves the lifetime p95. WindowedObs answers the recent-activity question
// without resetting anything: each ingested cumulative snapshot is diffed
// against the previous one from the same source (ObsSnapshot::diff, with
// its counter-reset clamp so a respawned worker's fresh counters read as
// new activity, not underflow), and the delta is merged into the current
// fixed-duration window. When the clock crosses a window boundary the
// current window is sealed and a new one starts; only the most recent
// `windows` are retained, oldest dropped. "p95 over the last 10 seconds"
// is then just merged(k).histograms["..."].percentile(95).
//
// Time is caller-supplied (an Obs::now_us() value), so rotation is exact
// and testable; ingest order per source must be chronological. All methods
// lock one mutex — this is telemetry-plane code fed by a poller at hertz
// rates, not a hot path.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace ffsm::obs {

/// One sealed (or still-filling) window of deltas merged across sources.
struct ObsWindow {
  std::uint64_t start_us = 0;  ///< Window start on the feeding clock.
  std::uint64_t end_us = 0;    ///< start_us + window duration.
  ObsSnapshot activity;        ///< Sum of per-source deltas in the window.
};

struct WindowedObsConfig {
  /// Most recent windows retained (the current, still-filling one
  /// included); older windows are dropped on rotation.
  std::size_t windows = 6;
  /// Fixed width of every window, microseconds.
  std::uint64_t window_us = 10'000'000;
};

class WindowedObs {
 public:
  explicit WindowedObs(WindowedObsConfig config = {});

  WindowedObs(const WindowedObs& other);
  WindowedObs& operator=(const WindowedObs& other);

  /// Feeds one cumulative snapshot from `source` observed at `now_us`.
  /// The delta against the previous snapshot from the same source lands in
  /// the window containing now_us (rotating and dropping as needed). The
  /// first snapshot from a new source counts in full — a worker that
  /// appears mid-flight contributes its history to the current window
  /// once, then deltas.
  void ingest(const std::string& source, const ObsSnapshot& cumulative,
              std::uint64_t now_us);

  /// The retained windows, oldest first (the last one may still be
  /// filling). Empty before the first ingest.
  [[nodiscard]] std::vector<ObsWindow> windows() const;

  /// Activity merged over the most recent `last` windows (all retained
  /// windows when `last` >= the retained count) — e.g. merged(1) is the
  /// current window, merged() the whole retained horizon.
  [[nodiscard]] ObsSnapshot merged(
      std::size_t last = static_cast<std::size_t>(-1)) const;

  [[nodiscard]] WindowedObsConfig config() const { return config_; }

 private:
  void rotate_to_locked(std::uint64_t now_us);

  WindowedObsConfig config_;
  mutable std::mutex mutex_;
  std::vector<ObsWindow> windows_;  // Oldest first; back is current.
  std::map<std::string, ObsSnapshot> last_seen_;  // Per-source cumulative.
};

}  // namespace ffsm::obs
