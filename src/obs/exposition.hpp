// Prometheus-style text exposition of an ObsSnapshot.
//
// Obs series names are dotted (`cluster.drain`, `wire.roundtrip`) and two
// families embed a dynamic suffix in the name itself
// (`health.probe.<host:port>`, `cluster.pending.<top>`), neither of which
// is legal in the exposition format: metric names must match
// [a-zA-Z_:][a-zA-Z0-9_:]*, and per-instance dimensions belong in labels,
// not the name (a per-endpoint metric *name* would explode the namespace
// and defeat aggregation). This header owns the mapping:
//
//   cluster.drain              -> cluster_drain
//   health.probe.10.0.0.7:7001 -> health_probe{endpoint="10.0.0.7:7001"}
//   cluster.pending.top8       -> cluster_pending{top="top8"}
//
// render_exposition() then emits the whole snapshot as `# TYPE`/`# HELP`
// annotated families: counters and gauges as single samples, histograms as
// the conventional cumulative `_bucket{le="..."}` series (log2 bucket
// upper bounds, closed with `+Inf`) plus `_sum` and `_count`. The output
// is a complete scrape body for a /metrics endpoint.
#pragma once

#include <string>
#include <string_view>

#include "obs/obs.hpp"

namespace ffsm::obs {

/// True when `name` is a legal exposition metric name:
/// [a-zA-Z_:][a-zA-Z0-9_:]*.
[[nodiscard]] bool legal_exposition_name(std::string_view name);

/// One obs series mapped onto the exposition namespace: a legal metric
/// name plus at most one label carrying a dynamic suffix split out of the
/// series name.
struct ExpositionSeries {
  std::string metric;       ///< Legal exposition name.
  std::string label_key;    ///< "" when the series has no dynamic suffix.
  std::string label_value;  ///< Raw (unescaped) label value.
};

/// Maps an obs series name onto the exposition namespace. Known
/// dynamic-suffix families (`health.probe.<endpoint>`,
/// `cluster.pending.<top>`) split into metric + label; every other name is
/// sanitized in place (dots and any other illegal byte become '_', a
/// leading digit gets a '_' prefix). The returned metric always satisfies
/// legal_exposition_name().
[[nodiscard]] ExpositionSeries map_exposition_series(std::string_view name);

/// Renders `snapshot` as Prometheus text exposition. Series mapping to the
/// same metric (label-split families) share one `# TYPE`/`# HELP` block.
/// Spans are not exposed (they are trace data, not scrapeable series).
[[nodiscard]] std::string render_exposition(const ObsSnapshot& snapshot);

}  // namespace ffsm::obs
