#include "obs/obs.hpp"

#include <utility>

namespace ffsm::obs {

void ObsSnapshot::merge(const ObsSnapshot& other, std::string_view source) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, snap] : other.histograms)
    histograms[name].merge(snap);
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  spans.reserve(spans.size() + other.spans.size());
  for (const TraceSpan& span : other.spans) {
    spans.push_back(span);
    if (spans.back().source.empty()) spans.back().source = source;
  }
}

ObsSnapshot ObsSnapshot::diff(const ObsSnapshot& newer,
                              const ObsSnapshot& older) {
  ObsSnapshot out;
  for (const auto& [name, value] : newer.counters) {
    const auto it = older.counters.find(name);
    const std::uint64_t base = it == older.counters.end() ? 0 : it->second;
    // Reset clamp: a source that restarted re-counts from zero; its whole
    // new cumulative value is this window's activity.
    const std::uint64_t delta = value >= base ? value - base : value;
    if (delta != 0) out.counters[name] = delta;
  }
  for (const auto& [name, snap] : newer.histograms) {
    const auto it = older.histograms.find(name);
    HistogramSnapshot delta;
    if (it == older.histograms.end()) {
      delta = snap;
    } else {
      const HistogramSnapshot& base = it->second;
      bool reset = snap.sum < base.sum;
      for (std::size_t i = 0; !reset && i < kHistogramBuckets; ++i)
        reset = snap.buckets[i] < base.buckets[i];
      if (reset) {
        delta = snap;
      } else {
        delta.sum = snap.sum - base.sum;
        for (std::size_t i = 0; i < kHistogramBuckets; ++i)
          delta.buckets[i] = snap.buckets[i] - base.buckets[i];
      }
    }
    if (delta.count() != 0 || delta.sum != 0) out.histograms[name] = delta;
  }
  for (const auto& [name, value] : newer.gauges) {
    const auto it = older.gauges.find(name);
    const std::int64_t base = it == older.gauges.end() ? 0 : it->second;
    if (value != base) out.gauges[name] = value - base;
  }
  return out;
}

Obs::Obs(ObsConfig config)
    : enabled_(config.enabled),
      trace_(config.enabled
                 ? static_cast<std::unique_ptr<TraceRecorder>>(
                       std::make_unique<RingTraceRecorder>(
                           config.trace_capacity))
                 : std::make_unique<NoopTraceRecorder>()),
      epoch_(std::chrono::steady_clock::now()) {}

void Obs::instant(std::string_view name, const SpanTags& tags) {
  if (!enabled_) return;
  TraceSpan span;
  span.name = std::string(name);
  span.shard = std::string(tags.shard);
  span.top = std::string(tags.top);
  span.exchange = tags.exchange;
  span.parent = tags.parent;
  span.start_us = now_us();
  span.instant = true;
  trace_->record(std::move(span));
  metrics_.counter(name).increment();
}

void Obs::span_since(std::string_view name, std::uint64_t start_us,
                     const SpanTags& tags) {
  if (!enabled_) return;
  const std::uint64_t duration = now_us() - start_us;
  metrics_.histogram(name).record(duration);
  TraceSpan span;
  span.name = std::string(name);
  span.shard = std::string(tags.shard);
  span.top = std::string(tags.top);
  span.exchange = tags.exchange;
  span.parent = tags.parent;
  span.start_us = start_us;
  span.duration_us = duration;
  trace_->record(std::move(span));
}

ObsSnapshot Obs::snapshot() const {
  ObsSnapshot out;
  metrics_.snapshot(&out.counters, &out.histograms, &out.gauges);
  out.spans = trace_->snapshot();
  return out;
}

namespace {
thread_local std::uint64_t t_current_span_id = 0;
}  // namespace

std::uint64_t current_span_id() noexcept { return t_current_span_id; }

std::uint64_t ScopedSpan::exchange_current(std::uint64_t id) noexcept {
  return std::exchange(t_current_span_id, id);
}

void ScopedSpan::finish() {
  if (obs_ == nullptr) return;
  Obs* obs = std::exchange(obs_, nullptr);
  exchange_current(previous_current_);
  const std::uint64_t duration = obs->now_us() - start_us_;
  obs->metrics().histogram(name_).record(duration);
  TraceSpan span;
  span.name = std::string(name_);
  span.shard = std::string(tags_.shard);
  span.top = std::string(tags_.top);
  span.exchange = tags_.exchange;
  span.parent = tags_.parent;
  span.start_us = start_us_;
  span.duration_us = duration;
  span.id = id_;
  obs->trace().record(std::move(span));
}

}  // namespace ffsm::obs
