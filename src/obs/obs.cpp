#include "obs/obs.hpp"

#include <utility>

namespace ffsm::obs {

void ObsSnapshot::merge(const ObsSnapshot& other, std::string_view source) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, snap] : other.histograms)
    histograms[name].merge(snap);
  spans.reserve(spans.size() + other.spans.size());
  for (const TraceSpan& span : other.spans) {
    spans.push_back(span);
    if (spans.back().source.empty()) spans.back().source = source;
  }
}

Obs::Obs(ObsConfig config)
    : enabled_(config.enabled),
      trace_(config.enabled
                 ? static_cast<std::unique_ptr<TraceRecorder>>(
                       std::make_unique<RingTraceRecorder>(
                           config.trace_capacity))
                 : std::make_unique<NoopTraceRecorder>()),
      epoch_(std::chrono::steady_clock::now()) {}

void Obs::instant(std::string_view name, const SpanTags& tags) {
  if (!enabled_) return;
  TraceSpan span;
  span.name = std::string(name);
  span.shard = std::string(tags.shard);
  span.top = std::string(tags.top);
  span.exchange = tags.exchange;
  span.parent = tags.parent;
  span.start_us = now_us();
  span.instant = true;
  trace_->record(std::move(span));
  metrics_.counter(name).increment();
}

void Obs::span_since(std::string_view name, std::uint64_t start_us,
                     const SpanTags& tags) {
  if (!enabled_) return;
  const std::uint64_t duration = now_us() - start_us;
  metrics_.histogram(name).record(duration);
  TraceSpan span;
  span.name = std::string(name);
  span.shard = std::string(tags.shard);
  span.top = std::string(tags.top);
  span.exchange = tags.exchange;
  span.parent = tags.parent;
  span.start_us = start_us;
  span.duration_us = duration;
  trace_->record(std::move(span));
}

ObsSnapshot Obs::snapshot() const {
  ObsSnapshot out;
  metrics_.snapshot(&out.counters, &out.histograms);
  out.spans = trace_->snapshot();
  return out;
}

void ScopedSpan::finish() {
  if (obs_ == nullptr) return;
  Obs* obs = std::exchange(obs_, nullptr);
  const std::uint64_t duration = obs->now_us() - start_us_;
  obs->metrics().histogram(name_).record(duration);
  TraceSpan span;
  span.name = std::string(name_);
  span.shard = std::string(tags_.shard);
  span.top = std::string(tags_.top);
  span.exchange = tags_.exchange;
  span.parent = tags_.parent;
  span.start_us = start_us_;
  span.duration_us = duration;
  span.id = id_;
  obs->trace().record(std::move(span));
}

}  // namespace ffsm::obs
