#include "obs/exposition.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

namespace ffsm::obs {

namespace {

bool legal_first(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool legal_rest(char c) { return legal_first(c) || (c >= '0' && c <= '9'); }

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty() || !legal_first(name.front())) out += '_';
  for (const char c : name) out += legal_rest(c) ? c : '_';
  return out;
}

/// Series families whose name embeds a dynamic suffix (endpoint, top key):
/// the prefix becomes the metric, the remainder a label.
struct SuffixFamily {
  std::string_view prefix;  // Includes the trailing dot.
  std::string_view label;
};

constexpr SuffixFamily kSuffixFamilies[] = {
    {"health.probe.", "endpoint"},
    {"cluster.pending.", "top"},
};

/// Escaped label value: backslash, double quote and newline per the
/// exposition format.
std::string escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

/// One sample line: `metric{label="value"} 123` (no label block when the
/// series carries none; `extra` appends family labels like le="...").
void sample_line(std::string& out, const ExpositionSeries& series,
                 std::string_view suffix, std::string_view extra_label,
                 std::string_view value) {
  out += series.metric;
  out += suffix;
  if (!series.label_key.empty() || !extra_label.empty()) {
    out += '{';
    if (!series.label_key.empty()) {
      out += series.label_key;
      out += "=\"";
      out += escape_label(series.label_value);
      out += '"';
      if (!extra_label.empty()) out += ',';
    }
    out += extra_label;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

void type_block(std::string& out, const std::string& metric,
                std::string_view kind, const std::string& family) {
  out += "# HELP ";
  out += metric;
  out += " ffsm series ";
  out += family;
  out += '\n';
  out += "# TYPE ";
  out += metric;
  out += ' ';
  out += kind;
  out += '\n';
}

std::string u64_str(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string i64_str(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

/// Groups same-metric series (label-split families) so each metric gets
/// exactly one # TYPE/# HELP block followed by all its samples.
template <typename Value>
using ByMetric =
    std::map<std::string,
             std::vector<std::pair<ExpositionSeries, const Value*>>>;

template <typename Value>
ByMetric<Value> group(const std::map<std::string, Value>& series) {
  ByMetric<Value> out;
  for (const auto& [name, value] : series) {
    ExpositionSeries mapped = map_exposition_series(name);
    std::string metric = mapped.metric;
    out[std::move(metric)].emplace_back(std::move(mapped), &value);
  }
  return out;
}

}  // namespace

bool legal_exposition_name(std::string_view name) {
  if (name.empty() || !legal_first(name.front())) return false;
  for (const char c : name.substr(1))
    if (!legal_rest(c)) return false;
  return true;
}

ExpositionSeries map_exposition_series(std::string_view name) {
  for (const SuffixFamily& family : kSuffixFamilies) {
    if (name.size() > family.prefix.size() &&
        name.substr(0, family.prefix.size()) == family.prefix) {
      ExpositionSeries out;
      out.metric =
          sanitize(name.substr(0, family.prefix.size() - 1));  // Drop dot.
      out.label_key = std::string(family.label);
      out.label_value = std::string(name.substr(family.prefix.size()));
      return out;
    }
  }
  return {sanitize(name), {}, {}};
}

std::string render_exposition(const ObsSnapshot& snapshot) {
  std::string out;
  for (const auto& [metric, entries] : group(snapshot.counters)) {
    type_block(out, metric, "counter", entries.front().first.metric);
    for (const auto& [series, value] : entries)
      sample_line(out, series, "", "", u64_str(*value));
  }
  for (const auto& [metric, entries] : group(snapshot.gauges)) {
    type_block(out, metric, "gauge", entries.front().first.metric);
    for (const auto& [series, value] : entries)
      sample_line(out, series, "", "", i64_str(*value));
  }
  for (const auto& [metric, entries] : group(snapshot.histograms)) {
    type_block(out, metric, "histogram", entries.front().first.metric);
    for (const auto& [series, hist] : entries) {
      // Cumulative buckets up to the last occupied one, then +Inf. All
      // samples are microseconds; the le bounds are the log2 bucket upper
      // bounds.
      std::size_t last = 0;
      for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        if (hist->buckets[i] != 0) last = i;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i <= last; ++i) {
        cumulative += hist->buckets[i];
        sample_line(out, series, "_bucket",
                    "le=\"" + u64_str(histogram_bucket_bound(i)) + "\"",
                    u64_str(cumulative));
      }
      sample_line(out, series, "_bucket", "le=\"+Inf\"",
                  u64_str(hist->count()));
      sample_line(out, series, "_sum", "", u64_str(hist->sum));
      sample_line(out, series, "_count", "", u64_str(hist->count()));
    }
  }
  return out;
}

}  // namespace ffsm::obs
