// Obs: one observability context — a MetricsRegistry, a TraceRecorder and
// the monotonic clock their samples are timed on.
//
// Every component that instruments a hot path takes an `Obs*` (nullptr =
// not instrumented); an Obs constructed disabled swaps the ring recorder
// for the compiled-in NoopTraceRecorder and turns every ScopedSpan into a
// single pointer check, which is the baseline bench_service_cluster
// compares instrumented drains against. Instrumentation never feeds back
// into computation, so results are bit-identical with obs on, off or
// absent.
//
// ObsSnapshot is the mergeable, wire-able view: counters and histogram
// buckets merge by name (summation — histograms stay exact under any merge
// order), spans concatenate with a `source` tag naming the peer they came
// from. Worker processes ship their snapshots back over kObs frames;
// FusionCluster::obs_snapshot() folds parent + per-shard snapshots into
// one cluster-wide view.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ffsm::obs {

/// Mergeable point-in-time view of one Obs (or a whole cluster of them).
struct ObsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, std::int64_t> gauges;
  std::vector<TraceSpan> spans;

  /// Folds `other` in: counters/histograms/gauges merge by name (summation
  /// — each source reports its own level, the fold is the cluster-wide
  /// total), spans append. Spans whose source is still "" are tagged with
  /// `source` (a span already tagged by an earlier merge keeps its
  /// original source).
  void merge(const ObsSnapshot& other, std::string_view source = {});

  /// Delta `newer - older`, keyed by series name — the windowed-collection
  /// primitive: successive cumulative snapshots diff into per-window
  /// activity without ever resetting a live registry.
  ///
  /// Counters subtract with a reset clamp: a counter that went *backwards*
  /// (the source restarted with fresh counters) contributes its new
  /// cumulative value, not a huge unsigned wraparound. Histograms subtract
  /// bucket-wise with the same whole-histogram reset clamp. Gauges are
  /// levels, not accumulations: the delta is the signed movement
  /// (newer - older), so merged windows report net change; read current
  /// levels off a cumulative snapshot. Series that did not move are
  /// dropped, so diff(s, s) is empty. Spans are not diffed (they are a
  /// bounded most-recent ring, not a cumulative series) — the result
  /// carries none.
  [[nodiscard]] static ObsSnapshot diff(const ObsSnapshot& newer,
                                        const ObsSnapshot& older);

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && histograms.empty() && gauges.empty() &&
           spans.empty();
  }

  bool operator==(const ObsSnapshot&) const = default;
};

struct ObsConfig {
  /// Disabled: metrics still exist but nothing records (no clock reads, no
  /// ring writes) — the no-op overhead baseline.
  bool enabled = true;
  /// Span ring capacity (most recent spans retained).
  std::size_t trace_capacity = 4096;
};

class Obs {
 public:
  explicit Obs(ObsConfig config = {});

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] TraceRecorder& trace() noexcept { return *trace_; }

  /// Microseconds since this instance's construction (steady clock).
  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records `value` into histogram `name` when enabled.
  void record(std::string_view name, std::uint64_t value) {
    if (enabled_) metrics_.histogram(name).record(value);
  }

  /// Increments counter `name` when enabled.
  void count(std::string_view name, std::uint64_t n = 1) {
    if (enabled_) metrics_.counter(name).add(n);
  }

  /// Sets gauge `name` to `v` when enabled (levels: queue depth, live
  /// connections — see Gauge).
  void gauge_set(std::string_view name, std::int64_t v) {
    if (enabled_) metrics_.gauge(name).set(v);
  }

  /// Moves gauge `name` by `n` (either sign) when enabled.
  void gauge_add(std::string_view name, std::int64_t n) {
    if (enabled_) metrics_.gauge(name).add(n);
  }

  /// Records an instant (point) event when enabled.
  void instant(std::string_view name, const SpanTags& tags = {});

  /// Records a completed span that started at `start_us` (a value from
  /// now_us()): one histogram sample plus one trace span. For spans whose
  /// start and end straddle scopes (e.g. a wire round-trip measured
  /// send-to-first-reply), where ScopedSpan does not fit.
  void span_since(std::string_view name, std::uint64_t start_us,
                  const SpanTags& tags = {});

  [[nodiscard]] ObsSnapshot snapshot() const;

 private:
  bool enabled_;
  MetricsRegistry metrics_;
  std::unique_ptr<TraceRecorder> trace_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Id of the innermost live ScopedSpan on the calling thread, 0 when none.
/// This is how a child finds its parent without explicit plumbing: a
/// backend about to ship work across a process boundary stamps the current
/// id into the serve frame, and the worker parents its spans under it —
/// cross-process trace stitching. Only ScopedSpans on an *enabled* Obs
/// participate.
[[nodiscard]] std::uint64_t current_span_id() noexcept;

/// RAII span: on destruction records one histogram sample (microseconds,
/// keyed by the span name) and one trace span. With a null or disabled
/// Obs the constructor is a pointer check and everything else a no-op.
/// The name must outlive the span (call sites use string literals).
/// While live, the span is the thread's current_span_id(); construction
/// saves the previous innermost id and finish() restores it, so nesting on
/// one thread behaves as a stack. Construct and finish on the same thread.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Obs* obs, std::string_view name, SpanTags tags = {})
      : obs_(obs != nullptr && obs->enabled() ? obs : nullptr) {
    if (obs_ == nullptr) return;
    name_ = name;
    tags_ = tags;
    id_ = obs_->trace().next_id();
    previous_current_ = exchange_current(id_);
    start_us_ = obs_->now_us();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { finish(); }

  /// This span's id, for tagging children (0 when not recording).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Ends the span now (idempotent; the destructor calls it too).
  void finish();

 private:
  /// Swaps the calling thread's current-span id, returning the old one.
  static std::uint64_t exchange_current(std::uint64_t id) noexcept;

  Obs* obs_ = nullptr;
  std::string_view name_;
  SpanTags tags_;
  std::uint64_t start_us_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t previous_current_ = 0;
};

}  // namespace ffsm::obs
