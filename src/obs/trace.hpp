// Bounded-ring trace recorder + Chrome trace-event export.
//
// A TraceSpan is one timed interval (or an instant event) on the monotonic
// clock of the Obs instance that recorded it: name, start/duration in
// microseconds, optional shard/top/exchange tags and a parent span id for
// nesting. RingTraceRecorder keeps the most recent `capacity` spans in a
// fixed ring — a long-lived service records forever in bounded memory and a
// snapshot always holds the latest window. NoopTraceRecorder is the
// compiled-in do-nothing implementation benchmarked against the ring in
// bench_service_cluster (instrumented drains must stay within 5% of it).
//
// write_chrome_trace() emits the snapshot as Chrome trace-event JSON
// (load via chrome://tracing or https://ui.perfetto.dev): one process lane
// per span source (the shard a span was merged from), one thread lane per
// shard/top tag.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ffsm::obs {

/// One recorded span. Plain data; crosses the wire inside kObs frames.
struct TraceSpan {
  std::string name;
  /// Which peer this span was merged from ("" until a merge tags it — the
  /// recording process itself never knows its cluster-wide identity).
  std::string source;
  std::string shard;  ///< Shard/endpoint tag ("" when not applicable).
  std::string top;    ///< Top-machine key tag ("" when not applicable).
  /// Start, microseconds since the recording Obs instance's epoch.
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint64_t id = 0;      ///< Nonzero, unique per recorder.
  std::uint64_t parent = 0;  ///< Enclosing span's id; 0 = root.
  std::uint64_t exchange = 0;  ///< Wire exchange tag; 0 = none.
  bool instant = false;  ///< Point event; duration_us is meaningless.

  bool operator==(const TraceSpan&) const = default;
};

/// Optional tags attached to a span at the recording site.
struct SpanTags {
  std::string_view shard = {};
  std::string_view top = {};
  std::uint64_t exchange = 0;
  std::uint64_t parent = 0;
};

/// Recorder interface. `record` must be safe to call from many threads.
class TraceRecorder {
 public:
  virtual ~TraceRecorder() = default;

  /// False when every record() is a guaranteed no-op (lets call sites skip
  /// clock reads and tag copies entirely).
  [[nodiscard]] virtual bool enabled() const noexcept = 0;

  /// Reserves a span id before the span completes, so children can name
  /// their parent while it is still open. Returns 0 when disabled.
  virtual std::uint64_t next_id() noexcept = 0;

  /// Stores one completed span (id already assigned via next_id, or 0 to
  /// have the recorder assign one).
  virtual void record(TraceSpan span) = 0;

  /// Copy of the retained spans, oldest first.
  [[nodiscard]] virtual std::vector<TraceSpan> snapshot() const = 0;
};

/// The no-op recorder: drops everything. The bench's overhead baseline.
class NoopTraceRecorder final : public TraceRecorder {
 public:
  [[nodiscard]] bool enabled() const noexcept override { return false; }
  std::uint64_t next_id() noexcept override { return 0; }
  void record(TraceSpan) override {}
  [[nodiscard]] std::vector<TraceSpan> snapshot() const override {
    return {};
  }
};

/// Fixed-capacity ring of the most recent spans. A mutex guards the ring
/// itself — spans are drain-granular (hundreds per second, not millions),
/// so contention is negligible next to the work being traced; the id
/// counter is atomic so next_id() never blocks.
class RingTraceRecorder final : public TraceRecorder {
 public:
  explicit RingTraceRecorder(std::size_t capacity = 4096);

  [[nodiscard]] bool enabled() const noexcept override { return true; }
  std::uint64_t next_id() noexcept override {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void record(TraceSpan span) override;
  [[nodiscard]] std::vector<TraceSpan> snapshot() const override;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total spans ever recorded (>= capacity means the ring has wrapped).
  [[nodiscard]] std::uint64_t recorded() const noexcept;

 private:
  const std::size_t capacity_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mutex_;
  std::vector<TraceSpan> ring_;
  std::size_t head_ = 0;        ///< Next write position.
  std::uint64_t recorded_ = 0;  ///< Lifetime record() count.
};

/// Serializes spans as a Chrome trace-event JSON object
/// (`{"traceEvents": [...]}`). Spans are grouped into one trace "process"
/// per source and one "thread" per (source, shard, top) lane, both named
/// via metadata events, so a merged cluster snapshot renders as one
/// timeline keyed by shard.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceSpan>& spans);

}  // namespace ffsm::obs
