// Cluster-wide metrics: named monotonic counters and log-bucketed latency
// histograms.
//
// A Histogram is a fixed array of 64 power-of-2 buckets (bucket 0 holds the
// value 0; bucket i holds [2^(i-1), 2^i) for microsecond-scale latencies up
// to ~2^62, clamped into the last bucket beyond that). record() is lock-free
// — one relaxed fetch_add per bucket hit plus one for the running sum — so
// the hot paths it instruments never serialize on telemetry. Snapshots are
// plain bucket arrays that merge by element-wise addition, which makes them
// associative and commutative: per-thread, per-shard and per-process
// histograms can be folded into one cluster-wide distribution in any order
// and the percentiles come out the same (property-tested in
// obs_metrics_test).
//
// MetricsRegistry maps stable names to counters/histograms. Lookup takes a
// shared lock; the returned references stay valid for the registry's
// lifetime (node-based map), so call sites may cache them and record with
// no lock at all.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace ffsm::obs {

/// Fixed bucket count shared by every histogram: snapshots from different
/// threads, shards and processes always line up bucket-for-bucket.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index of a recorded value: 0 for 0, otherwise bit_width(value)
/// clamped into the last bucket — i.e. bucket i spans [2^(i-1), 2^i).
[[nodiscard]] constexpr std::size_t histogram_bucket(
    std::uint64_t value) noexcept {
  std::size_t width = 0;
  while (value != 0) {
    ++width;
    value >>= 1;
  }
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

/// Upper bound (inclusive representative) of a bucket, used as the reported
/// percentile value: 0 for bucket 0, else 2^i - 1.
[[nodiscard]] constexpr std::uint64_t histogram_bucket_bound(
    std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= 64) bucket = 64;
  return bucket == 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << bucket) - 1;
}

/// Midpoint of a bucket's value range: 0 for bucket 0, else the average of
/// the bucket's inclusive bounds [2^(i-1), 2^i - 1]. The expected-case
/// representative when samples spread across the bucket, vs the worst-case
/// `histogram_bucket_bound`.
[[nodiscard]] constexpr std::uint64_t histogram_bucket_mid(
    std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  const std::uint64_t lo = std::uint64_t{1} << (bucket - 1);
  const std::uint64_t hi = histogram_bucket_bound(bucket);
  return lo + (hi - lo) / 2;
}

/// A point-in-time copy of one histogram. Plain data: copyable, wire-able,
/// and mergeable by element-wise addition.
struct HistogramSnapshot {
  std::uint64_t sum = 0;  ///< Sum of raw recorded values (for the mean).
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t b : buckets) n += b;
    return n;
  }

  /// Element-wise accumulation; associative and commutative, so any merge
  /// tree over any partitioning of the samples yields the same snapshot.
  void merge(const HistogramSnapshot& other) noexcept {
    sum += other.sum;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
      buckets[i] += other.buckets[i];
  }

  /// Value at percentile p (0 < p <= 100): the *upper bound* of the bucket
  /// holding the ceil(p/100 * count)-th smallest sample. 0 when empty.
  ///
  /// Because buckets span [2^(i-1), 2^i), the true sample can be almost a
  /// factor of 2 smaller than the reported bound — percentile() is a
  /// conservative (pessimistic) estimate with a <= 2x overestimate, never
  /// an underestimate. Dashboards and human-facing tables should prefer
  /// percentile_mid(), which reports the bucket midpoint (expected error
  /// ~+/-33% instead of a systematic power-of-2 ceiling).
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;

  /// Like percentile(), but reports the *midpoint* of the selected bucket —
  /// the expected-case representative when samples spread across the
  /// bucket's range. Same bucket selection, so percentile_mid(p) <=
  /// percentile(p) always.
  [[nodiscard]] std::uint64_t percentile_mid(double p) const noexcept;

  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
  }

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Lock-free latency histogram. All stores are relaxed: recording can never
/// block, reorder computation, or perturb results — only the telemetry.
class Histogram {
 public:
  Histogram() {
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  void record(std::uint64_t value) noexcept {
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[histogram_bucket(value)].fetch_add(1,
                                                std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot out;
    out.sum = sum_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
      out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
  }

 private:
  std::atomic<std::uint64_t> sum_;
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_;
};

/// Named monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Named level gauge: a current value that moves both ways (queue depth,
/// pending requests, live connections), unlike a Counter which only grows.
/// Snapshot merging across sources *sums* gauges — each process reports its
/// own level, and the cluster-wide level is the sum of the parts.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  void decrement() noexcept { add(-1); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Name -> counter/histogram directory. Entries are created on first use
/// and never removed, so returned references are stable; recording through
/// them is lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);

  /// Point-in-time copy of every metric, keyed by name. Any output map may
  /// be null to skip that metric kind.
  void snapshot(std::map<std::string, std::uint64_t>* counters,
                std::map<std::string, HistogramSnapshot>* histograms,
                std::map<std::string, std::int64_t>* gauges = nullptr) const;

 private:
  mutable std::shared_mutex mutex_;
  // unique_ptr values: the payloads hold atomics (not movable) and their
  // addresses must survive rehash-free map growth.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

}  // namespace ffsm::obs
