#include "obs/trace.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace ffsm::obs {

RingTraceRecorder::RingTraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void RingTraceRecorder::record(TraceSpan span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (span.id == 0) span.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[head_] = std::move(span);
  }
  head_ = (head_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceSpan> RingTraceRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Full ring: head_ points at the oldest entry.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

std::uint64_t RingTraceRecorder::recorded() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

namespace {

/// JSON string escaping (quotes, backslashes, control bytes).
void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_metadata(std::ostream& out, const char* what, int pid, int tid,
                    std::string_view name, bool with_tid) {
  out << "{\"ph\":\"M\",\"name\":\"" << what << "\",\"pid\":" << pid;
  if (with_tid) out << ",\"tid\":" << tid;
  out << ",\"args\":{\"name\":";
  write_json_string(out, name);
  out << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceSpan>& spans) {
  // pid per span source; tid per (pid, shard, top) lane. Ids are assigned
  // in first-appearance order so the output is deterministic for a given
  // span sequence.
  std::map<std::string, int> pids;
  std::map<std::pair<int, std::string>, int> tids;
  const auto pid_of = [&](const std::string& source) {
    return pids.emplace(source, static_cast<int>(pids.size()) + 1)
        .first->second;
  };
  const auto tid_of = [&](int pid, const TraceSpan& span) {
    std::string lane = span.shard;
    if (!span.top.empty()) {
      if (!lane.empty()) lane += '/';
      lane += span.top;
    }
    return tids
        .emplace(std::make_pair(pid, std::move(lane)),
                 static_cast<int>(tids.size()) + 1)
        .first->second;
  };

  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    const int pid = pid_of(span.source);
    const int tid = tid_of(pid, span);
    if (!first) out << ",";
    first = false;
    out << "{\"name\":";
    write_json_string(out, span.name);
    if (span.instant) {
      out << ",\"ph\":\"i\",\"s\":\"p\"";
    } else {
      out << ",\"ph\":\"X\",\"dur\":" << span.duration_us;
    }
    out << ",\"ts\":" << span.start_us << ",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"id\":" << span.id
        << ",\"parent\":" << span.parent << ",\"exchange\":" << span.exchange;
    if (!span.shard.empty()) {
      out << ",\"shard\":";
      write_json_string(out, span.shard);
    }
    if (!span.top.empty()) {
      out << ",\"top\":";
      write_json_string(out, span.top);
    }
    out << "}}";
  }
  // Name the lanes after the fact (metadata events may appear anywhere in
  // the stream).
  for (const auto& [source, pid] : pids) {
    if (!first) out << ",";
    first = false;
    write_metadata(out, "process_name", pid, 0,
                   source.empty() ? std::string_view("cluster") : source,
                   false);
  }
  for (const auto& [key, tid] : tids) {
    if (!first) out << ",";
    first = false;
    write_metadata(out, "thread_name", key.first, tid,
                   key.second.empty() ? std::string_view("main") : key.second,
                   true);
  }
  out << "]}\n";
}

}  // namespace ffsm::obs
