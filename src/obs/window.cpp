#include "obs/window.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace ffsm::obs {

WindowedObs::WindowedObs(WindowedObsConfig config) : config_(config) {
  FFSM_EXPECTS(config_.windows > 0);
  FFSM_EXPECTS(config_.window_us > 0);
}

WindowedObs::WindowedObs(const WindowedObs& other) {
  const std::lock_guard<std::mutex> lock(other.mutex_);
  config_ = other.config_;
  windows_ = other.windows_;
  last_seen_ = other.last_seen_;
}

WindowedObs& WindowedObs::operator=(const WindowedObs& other) {
  if (this == &other) return *this;
  // Two locks, consistent order by address, to keep the copy atomic.
  WindowedObs copy(other);
  const std::lock_guard<std::mutex> lock(mutex_);
  config_ = copy.config_;
  windows_ = std::move(copy.windows_);
  last_seen_ = std::move(copy.last_seen_);
  return *this;
}

void WindowedObs::rotate_to_locked(std::uint64_t now_us) {
  if (windows_.empty()) {
    // Align the first window to a window_us grid so rotation instants are
    // independent of when the first sample happened to arrive.
    const std::uint64_t start = now_us - now_us % config_.window_us;
    windows_.push_back({start, start + config_.window_us, {}});
  }
  // A stalled poller may skip several boundaries; seal empty windows in
  // between so window timestamps stay contiguous and honest.
  while (now_us >= windows_.back().end_us) {
    const std::uint64_t start = windows_.back().end_us;
    windows_.push_back({start, start + config_.window_us, {}});
    if (windows_.size() > config_.windows)
      windows_.erase(windows_.begin(),
                     windows_.begin() +
                         static_cast<std::ptrdiff_t>(windows_.size() -
                                                     config_.windows));
  }
}

void WindowedObs::ingest(const std::string& source,
                         const ObsSnapshot& cumulative,
                         std::uint64_t now_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  rotate_to_locked(now_us);
  const auto it = last_seen_.try_emplace(source).first;
  ObsSnapshot delta = ObsSnapshot::diff(cumulative, it->second);
  it->second = cumulative;
  it->second.spans.clear();  // Deltas never carry spans; don't retain them.
  if (!delta.empty()) windows_.back().activity.merge(delta, source);
}

std::vector<ObsWindow> WindowedObs::windows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return windows_;
}

ObsSnapshot WindowedObs::merged(std::size_t last) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ObsSnapshot out;
  const std::size_t take = last < windows_.size() ? last : windows_.size();
  for (std::size_t i = windows_.size() - take; i < windows_.size(); ++i)
    out.merge(windows_[i].activity);
  return out;
}

}  // namespace ffsm::obs
